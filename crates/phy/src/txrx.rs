//! The transmit and receive chains.
//!
//! Per-client transmit pipeline (§4 of the paper, mirroring 802.11):
//! payload → CRC-32 → pad → scramble → rate-1/2 convolutional code (+tail)
//! → puncture → per-OFDM-symbol interleave → Gray QAM mapping → one grid
//! symbol per (OFDM symbol, subcarrier).
//!
//! The uplink receive pipeline runs a [`MimoDetector`] per (OFDM symbol,
//! subcarrier) on the stacked clients' symbols, then inverts the chain per
//! client and checks the CRC — frame success is what the throughput
//! figures count.
//!
//! Every pipeline stage writes into buffers owned by a
//! [`FrameWorkspace`]: the public one-shot entry points
//! ([`uplink_frame`], [`decode_frame_batched`]) wrap a fresh workspace,
//! while long-lived receivers hold one and call the `_into` variants —
//! [`decode_frame_batched_into`] performs **zero heap allocations per
//! frame** after warmup, at any worker count.

use crate::config::PhyConfig;
use crate::frame::{FrameWorkspace, RxScratch, TxScratch};
use geosphere_core::{
    apply_channel_into, BatchDetector, DetectionBatch, DetectionJob, DetectorStats, MimoDetector,
};
use gs_channel::{sample_cn, MimoChannel};
use gs_coding::{
    check_crc_ok, conv, crc::crc32_bits, depuncture_into, interleave::Interleaver, puncture_into,
    scramble::Scrambler, viterbi,
};
use gs_linalg::Matrix;
use gs_modulation::{map_bitstream_into, unmap_points_into, GridPoint};
use rand::Rng;

/// A transmitted client frame: the original payload and the grid-domain
/// symbol plan `[ofdm_symbol][subcarrier]`.
#[derive(Clone, Debug)]
pub struct TxFrame {
    /// The information payload (pre-CRC).
    pub payload: Vec<bool>,
    /// Symbols per OFDM symbol per subcarrier.
    pub symbols: Vec<Vec<GridPoint>>,
}

/// Encodes one client frame.
///
/// # Panics
/// Panics when `payload.len() != cfg.payload_bits`.
pub fn transmit_frame(cfg: &PhyConfig, payload: &[bool]) -> TxFrame {
    let mut tx = TxScratch::default();
    let mut flat = Vec::new();
    transmit_symbols_into(cfg, payload, &mut tx, &mut flat);
    let symbols: Vec<Vec<GridPoint>> =
        flat.chunks(cfg.n_subcarriers).map(|ch| ch.to_vec()).collect();
    TxFrame { payload: payload.to_vec(), symbols }
}

/// The transmit chain into a flat symbol buffer (`[t * n_subcarriers + k]`),
/// all intermediates in reused scratch: allocation-free once warm.
///
/// # Panics
/// Panics when `payload.len() != cfg.payload_bits`.
pub(crate) fn transmit_symbols_into(
    cfg: &PhyConfig,
    payload: &[bool],
    tx: &mut TxScratch,
    out: &mut Vec<GridPoint>,
) {
    assert_eq!(payload.len(), cfg.payload_bits, "payload length mismatch");
    let c = cfg.constellation;

    // Payload + CRC + pad, scrambled (the tail is appended by the encoder
    // and must stay zero, so scrambling covers only the data region).
    tx.info.clear();
    tx.info.extend_from_slice(payload);
    let crc = crc32_bits(payload);
    tx.info.extend((0..32).map(|k| crc >> k & 1 == 1));
    tx.info.extend(std::iter::repeat_n(false, cfg.pad_bits()));
    Scrambler::default_seed().apply_in_place(&mut tx.info);

    // Convolutional code (appends the 6-bit tail), then puncturing.
    conv::encode_into(&tx.info, &mut tx.mother);
    puncture_into(&tx.mother, cfg.code_rate, &mut tx.coded);
    debug_assert_eq!(tx.coded.len(), cfg.n_ofdm_symbols() * cfg.n_cbps());

    // Per-OFDM-symbol interleaving, then Gray mapping.
    let il = Interleaver::new(cfg.n_cbps(), c.bits_per_symbol());
    il.interleave_stream_into(&tx.coded, &mut tx.interleaved);
    map_bitstream_into(c, &tx.interleaved, out);
}

/// Decodes one client's detected grid symbols back to a payload, returning
/// `Some(payload)` only when the CRC verifies.
pub fn receive_frame(cfg: &PhyConfig, detected: &[Vec<GridPoint>]) -> Option<Vec<bool>> {
    let flat: Vec<GridPoint> = detected.iter().flatten().copied().collect();
    let mut rx = RxScratch::default();
    if receive_frame_flat_into(cfg, &flat, &mut rx) {
        rx.info.truncate(cfg.payload_bits);
        Some(rx.info)
    } else {
        None
    }
}

/// The hard receive chain over a flat symbol stream, every intermediate in
/// reused scratch. Returns whether the CRC verified; the decoded
/// information bits (payload + CRC) are left in `rx.info`.
pub(crate) fn receive_frame_flat_into(
    cfg: &PhyConfig,
    detected: &[GridPoint],
    rx: &mut RxScratch,
) -> bool {
    let _prof = gs_prof::scope(gs_prof::Stage::Recover);
    _prof.add_bytes(cfg.payload_bits as u64 / 8);
    preprocess_client_into(cfg, detected, rx);
    viterbi::decode_with_erasures_into(&rx.mother_cb, &mut rx.vit, &mut rx.info);
    Scrambler::default_seed().apply_in_place(&mut rx.info);
    rx.info.truncate(cfg.payload_bits + 32); // drop pad
    check_crc_ok(&rx.info)
}

/// The pre-Viterbi half of one client's receive chain: demap the detected
/// grid points, deinterleave, and depuncture into `rx.mother_cb`.
fn preprocess_client_into(cfg: &PhyConfig, detected: &[GridPoint], rx: &mut RxScratch) {
    let c = cfg.constellation;
    unmap_points_into(c, detected, &mut rx.bits);
    let il = Interleaver::new(cfg.n_cbps(), c.bits_per_symbol());
    il.deinterleave_stream_into(&rx.bits, &mut rx.deint);
    // `total_info_bits` already includes the 6-bit tail, so the mother
    // (rate-1/2) stream is exactly twice it.
    let mother_len = 2 * cfg.total_info_bits();
    depuncture_into(&rx.deint, cfg.code_rate, mother_len, &mut rx.mother_cb);
}

/// Result of one multi-user uplink frame exchange.
#[derive(Clone, Debug, Default)]
pub struct UplinkOutcome {
    /// Per-client frame success (CRC verified).
    pub client_ok: Vec<bool>,
    /// Detector operation counts accumulated over the frame.
    pub stats: DetectorStats,
    /// Number of detector invocations (OFDM symbols × subcarriers) —
    /// divide `stats` by this for the paper's per-subcarrier averages.
    pub detections: u64,
    /// The control-plane detector tier stamped on the frame
    /// ([`FrameWorkspace::set_detector_tier`]): which rung of a
    /// [`geosphere_core::DetectorLadder`] decoded it. Entry points that
    /// never stamp a tier leave the workspace default
    /// ([`geosphere_core::DetectorTier::Sphere`]).
    pub tier: geosphere_core::DetectorTier,
}

/// Simulates one uplink frame: every client transmits simultaneously
/// through `channel` at the given SNR; the AP detects with `detector`.
///
/// `channel` must have either one subcarrier (flat — reused for all) or
/// exactly `cfg.n_subcarriers`.
pub fn uplink_frame<R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
) -> UplinkOutcome {
    uplink_frame_with_csi(cfg, channel, None, detector, snr_db, rng)
}

/// Like [`uplink_frame`] but detects with (possibly imperfect) channel
/// state information `csi` while the air uses `channel` — the path used to
/// study estimated-CSI performance (see [`crate::chanest`]). `None` means
/// genie CSI.
pub fn uplink_frame_with_csi<R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    csi: Option<&MimoChannel>,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
) -> UplinkOutcome {
    let mut ws = FrameWorkspace::new();
    uplink_frame_with_csi_into(cfg, channel, csi, detector, snr_db, rng, &mut ws).clone()
}

/// [`uplink_frame_with_csi`] recycling a [`FrameWorkspace`]: the serial
/// *reference* receive path (fresh preprocessing per detection, exactly as
/// a subcarrier-at-a-time receiver would run) with the frame plan and the
/// receive chain reusing the workspace's buffers. Bit-identical to
/// [`uplink_frame_with_csi`].
#[allow(clippy::too_many_arguments)]
pub fn uplink_frame_with_csi_into<'w, R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    csi: Option<&MimoChannel>,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
    ws: &'w mut FrameWorkspace,
) -> &'w UplinkOutcome {
    plan_uplink_frame_into(cfg, channel, csi, snr_db, rng, ws);
    let mut stats = DetectorStats::default();
    begin_assemble(ws);
    for idx in 0..ws.n_jobs {
        let job = &ws.jobs[idx];
        let det = detector.detect(&ws.rx_channels[job.channel], &job.y, cfg.constellation);
        absorb_detection(&mut ws.detected, &mut stats, idx, &det);
    }
    finish_outcome(cfg, ws, stats)
}

/// Like [`uplink_frame`] but fans the frame's per-subcarrier sphere
/// searches out across `workers` threads (`0` = machine parallelism) and
/// amortizes per-subcarrier channel preprocessing across the frame's OFDM
/// symbols via [`MimoDetector::detect_batch`].
///
/// Output is **bit-identical** to [`uplink_frame`] for the same `rng`
/// state, at every worker count: all randomness (payloads, then noise in
/// OFDM-symbol-major order) is drawn before detection begins, in the same
/// order the serial path draws it, and detection is a pure function of the
/// planned problems.
pub fn decode_frame_batched<R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
    workers: usize,
) -> UplinkOutcome {
    let mut ws = FrameWorkspace::new();
    decode_frame_scoped_into(cfg, channel, detector, snr_db, rng, workers, &mut ws).clone()
}

/// The generic batched decode over a recycled workspace: single-worker
/// frames run inline through the detector's reusable batch workspace;
/// multi-worker frames fan out through [`BatchDetector`]'s scoped threads
/// (respawned per frame — callers that can name their detector type should
/// prefer [`decode_frame_batched_into`] and its persistent pool). Used by
/// [`crate::measure::measure_batched`] so the per-frame plan and receive
/// chain reuse one workspace across a whole measurement.
pub(crate) fn decode_frame_scoped_into<'w, R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
    workers: usize,
    ws: &'w mut FrameWorkspace,
) -> &'w UplinkOutcome {
    plan_uplink_frame_into(cfg, channel, None, snr_db, rng, ws);
    let mut stats = DetectorStats::default();
    if workers == 1 {
        detect_planned_inline(cfg, detector, ws, &mut stats);
    } else {
        let batch = DetectionBatch {
            channels: &ws.rx_channels[..ws.n_rx_channels],
            jobs: &ws.jobs[..ws.n_jobs],
            c: cfg.constellation,
        };
        let detections = BatchDetector::new(detector, workers).detect_batch(&batch);
        begin_assemble(ws);
        let _prof = gs_prof::scope(gs_prof::Stage::Scatter);
        for (idx, det) in detections.iter().enumerate() {
            absorb_detection(&mut ws.detected, &mut stats, idx, det);
        }
    }
    finish_outcome(cfg, ws, stats)
}

/// [`decode_frame_batched`] recycling a [`FrameWorkspace`] — the
/// steady-state receive loop. Bit-identical to [`decode_frame_batched`]
/// for the same `rng` state at every worker count, and **allocation-free
/// per frame** after one warmup frame of the same shape:
///
/// * the frame plan refills pooled payload/symbol/job buffers,
/// * `workers <= 1` detects inline through the workspace's
///   [`DetectorWorkspace`](geosphere_core::DetectorWorkspace) with
///   recycled outputs,
/// * `workers > 1` dispatches through the workspace's persistent
///   [`DetectionPool`](geosphere_core::DetectionPool) (`0` = machine
///   parallelism, resolved once) — job and channel buffers are lent to the
///   pool and returned, results are read in place,
/// * the receive chain decodes into reused Viterbi/deinterleave scratch.
///
/// The detector must be `Clone + PartialEq` so the pool can keep a cheap
/// `Arc` of it and rebuild only when the detector actually changes.
#[allow(clippy::too_many_arguments)]
pub fn decode_frame_batched_into<'w, R, D>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
    workers: usize,
    ws: &'w mut FrameWorkspace,
) -> &'w UplinkOutcome
where
    R: Rng + ?Sized,
    D: MimoDetector + Clone + PartialEq + 'static,
{
    plan_uplink_frame_into(cfg, channel, None, snr_db, rng, ws);
    let mut stats = DetectorStats::default();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    };
    if workers <= 1 {
        detect_planned_inline(cfg, detector, ws, &mut stats);
    } else {
        let arc = ws.pool_detector_for(detector);
        ws.pool_with_workers(workers);
        // Detach the pool so the result visitor below can borrow the rest
        // of the workspace mutably (a pointer move, not an allocation).
        let mut pool = ws.pool.take().expect("pool just ensured");
        pool.run(&arc, &mut ws.rx_channels, &mut ws.jobs, ws.n_jobs, cfg.constellation);
        begin_assemble(ws);
        let scatter = gs_prof::scope(gs_prof::Stage::Scatter);
        pool.for_each_result(|idx, det| absorb_detection(&mut ws.detected, &mut stats, idx, det));
        drop(scatter);
        ws.pool = Some(pool);
    }
    finish_outcome(cfg, ws, stats)
}

/// Single-worker amortized detection on the calling thread: the batch runs
/// through the detector's reusable workspace with recycled outputs.
fn detect_planned_inline<D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    detector: &D,
    ws: &mut FrameWorkspace,
    stats: &mut DetectorStats,
) {
    {
        let n_rx = ws.n_rx_channels;
        let n_jobs = ws.n_jobs;
        let FrameWorkspace { rx_channels, jobs, det_ws, det_out, .. } = ws;
        let batch = DetectionBatch {
            channels: &rx_channels[..n_rx],
            jobs: &jobs[..n_jobs],
            c: cfg.constellation,
        };
        detector.detect_batch_with(&batch, det_ws, det_out);
    }
    begin_assemble(ws);
    let _prof = gs_prof::scope(gs_prof::Stage::Scatter);
    let FrameWorkspace { det_out, detected, .. } = ws;
    for (idx, det) in det_out.iter().enumerate() {
        absorb_detection(detected, stats, idx, det);
    }
}

/// The frame-plan prologue shared by the hard, soft, and iterative entry
/// points: draws every client payload (the first RNG consumer, client by
/// client — the draw order all paths' bit-identity rests on), runs the
/// transmit chains into the workspace's flat symbol grids, and refreshes
/// the grid-domain channel table (constellation scale folded in so grid
/// symbols fly at unit average power). Returns `(n_sym, n_grid)`.
/// Allocation-free once the workspace has warmed up to this frame shape.
pub(crate) fn plan_transmit_into<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    rng: &mut R,
    ws: &mut FrameWorkspace,
) -> (usize, usize) {
    let nc = channel.num_tx();
    let c = cfg.constellation;
    assert!(
        channel.num_subcarriers() == 1 || channel.num_subcarriers() == cfg.n_subcarriers,
        "channel subcarrier count must be 1 or {}",
        cfg.n_subcarriers
    );

    // Per-client frames with random payloads.
    if ws.payloads.len() < nc {
        ws.payloads.resize_with(nc, Vec::new);
    }
    if ws.symbols.len() < nc {
        ws.symbols.resize_with(nc, Vec::new);
    }
    for cl in 0..nc {
        let FrameWorkspace { payloads, symbols, tx, .. } = ws;
        let payload = &mut payloads[cl];
        payload.clear();
        payload.extend((0..cfg.payload_bits).map(|_| rng.gen_bool(0.5)));
        transmit_symbols_into(cfg, payload, tx, &mut symbols[cl]);
    }
    let n_sym = ws.symbols[0].len() / cfg.n_subcarriers;

    let n_grid = channel.num_subcarriers();
    if ws.grid_channels.len() < n_grid {
        ws.grid_channels.resize_with(n_grid, Matrix::default);
    }
    for (k, m) in channel.iter().enumerate() {
        ws.grid_channels[k].scale_from(m, c.scale());
    }
    (n_sym, n_grid)
}

/// Draws every random quantity of the frame — client payloads, then
/// per-(symbol, subcarrier) noise — in the fixed order all receive paths
/// share, and packages the resulting detection problems into the
/// workspace's pooled buffers. Allocation-free once the workspace has
/// warmed up to this frame shape.
pub(crate) fn plan_uplink_frame_into<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    csi: Option<&MimoChannel>,
    snr_db: f64,
    rng: &mut R,
    ws: &mut FrameWorkspace,
) {
    let _prof = gs_prof::scope(gs_prof::Stage::Plan);
    let _tspan = gs_prof::trace::span(gs_prof::trace::TracePoint::Stage(gs_prof::Stage::Plan));
    let nc = channel.num_tx();
    let na = channel.num_rx();
    let c = cfg.constellation;
    _prof.add_bytes((nc * cfg.payload_bits) as u64 / 8);
    let (n_sym, n_grid) = plan_transmit_into(cfg, channel, rng, ws);
    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);
    ws.n_grid_channels = n_grid;
    // The detector's view of the channel: genie (the truth) or supplied CSI.
    let n_rx = match csi {
        Some(est) => {
            assert_eq!(est.num_rx(), na, "CSI antenna mismatch");
            assert_eq!(est.num_tx(), nc, "CSI stream mismatch");
            let n = est.num_subcarriers();
            if ws.rx_channels.len() < n {
                ws.rx_channels.resize_with(n, Matrix::default);
            }
            for (k, m) in est.iter().enumerate() {
                ws.rx_channels[k].scale_from(m, c.scale());
            }
            n
        }
        None => {
            if ws.rx_channels.len() < n_grid {
                ws.rx_channels.resize_with(n_grid, Matrix::default);
            }
            for k in 0..n_grid {
                let FrameWorkspace { grid_channels, rx_channels, .. } = ws;
                rx_channels[k].copy_from(&grid_channels[k]);
            }
            n_grid
        }
    };
    ws.n_rx_channels = n_rx;

    let n_jobs = n_sym * cfg.n_subcarriers;
    if ws.jobs.len() < n_jobs {
        ws.jobs.resize_with(n_jobs, || DetectionJob { channel: 0, y: Vec::new() });
    }
    let mut idx = 0;
    for t in 0..n_sym {
        for k in 0..cfg.n_subcarriers {
            let FrameWorkspace { symbols, grid_channels, jobs, s_buf, .. } = ws;
            let h = &grid_channels[k % n_grid];
            s_buf.clear();
            s_buf.extend((0..nc).map(|cl| symbols[cl][t * cfg.n_subcarriers + k]));
            let job = &mut jobs[idx];
            job.channel = k % n_rx;
            apply_channel_into(h, s_buf, &mut job.y);
            for v in job.y.iter_mut() {
                *v += sample_cn(rng, sigma2);
            }
            debug_assert_eq!(job.y.len(), na);
            idx += 1;
        }
    }

    ws.n_jobs = n_jobs;
    ws.n_sym = n_sym;
    ws.n_clients = nc;
}

/// Sizes the per-client detected-symbol buffers for the planned frame.
pub(crate) fn begin_assemble(ws: &mut FrameWorkspace) {
    let _prof = gs_prof::scope(gs_prof::Stage::Scatter);
    let nc = ws.n_clients;
    if ws.detected.len() < nc {
        ws.detected.resize_with(nc, Vec::new);
    }
    for d in ws.detected.iter_mut().take(nc) {
        d.clear();
        d.resize(ws.n_jobs, GridPoint::default());
    }
}

/// Scatters one detection's symbols to the per-client buffers and
/// accumulates its operation counts.
pub(crate) fn absorb_detection(
    detected: &mut [Vec<GridPoint>],
    stats: &mut DetectorStats,
    idx: usize,
    det: &geosphere_core::Detection,
) {
    *stats += det.stats;
    for (cl, &p) in det.symbols.iter().enumerate() {
        detected[cl][idx] = p;
    }
}

/// Inverts the per-client receive chains over the scattered detections and
/// writes the frame outcome into the workspace.
pub(crate) fn finish_outcome<'w>(
    cfg: &PhyConfig,
    ws: &'w mut FrameWorkspace,
    stats: DetectorStats,
) -> &'w UplinkOutcome {
    let nc = ws.n_clients;
    let n_jobs = ws.n_jobs;
    ws.out.client_ok.clear();
    if nc >= 2 && !ws.per_client_viterbi {
        // Multi-symbol SoA path: every client's pre-Viterbi chain feeds one
        // flat client-major mother slab, one lockstep trellis pass decodes
        // them all, then the per-client tail (descramble, CRC, compare)
        // runs over slices of the flat output. Bit-identical to the
        // per-client loop below — the lockstep decoder reproduces the
        // single-stream recurrence exactly.
        let FrameWorkspace { detected, payloads, rx, out, .. } = ws;
        {
            let _prof = gs_prof::scope(gs_prof::Stage::Recover);
            let _tspan =
                gs_prof::trace::span(gs_prof::trace::TracePoint::Stage(gs_prof::Stage::Recover));
            _prof.add_bytes((nc * cfg.payload_bits) as u64 / 8);
            rx.mother_multi.clear();
            for cl in 0..nc {
                preprocess_client_into(cfg, &detected[cl][..n_jobs], rx);
                let RxScratch { mother_cb, mother_multi, .. } = rx;
                mother_multi.extend_from_slice(mother_cb);
            }
        }
        {
            let _tspan =
                gs_prof::trace::span(gs_prof::trace::TracePoint::Stage(gs_prof::Stage::Viterbi));
            viterbi::decode_multi_with_erasures_into(
                &rx.mother_multi,
                nc,
                &mut rx.vit,
                &mut rx.info_multi,
            );
        }
        let _prof = gs_prof::scope(gs_prof::Stage::Recover);
        let _tspan = gs_prof::trace::span(gs_prof::trace::TracePoint::Stage(gs_prof::Stage::Crc));
        let info_len = rx.info_multi.len() / nc;
        let frame_len = cfg.payload_bits + 32;
        for cl in 0..nc {
            // Descrambling is positional, so stopping at the CRC boundary
            // leaves exactly the bits the single-stream path keeps after
            // its truncate.
            let info = &mut rx.info_multi[cl * info_len..cl * info_len + frame_len];
            Scrambler::default_seed().apply_in_place(info);
            let ok = check_crc_ok(info) && info[..cfg.payload_bits] == payloads[cl][..];
            out.client_ok.push(ok);
        }
    } else {
        // Per-client fallback: Viterbi/CRC run nested inside the chain,
        // so the flight recorder sees one recover span per frame here.
        let _tspan =
            gs_prof::trace::span(gs_prof::trace::TracePoint::Stage(gs_prof::Stage::Recover));
        for cl in 0..nc {
            let FrameWorkspace { detected, payloads, rx, out, .. } = ws;
            let ok = receive_frame_flat_into(cfg, &detected[cl][..n_jobs], rx)
                && rx.info[..cfg.payload_bits] == payloads[cl][..];
            out.client_ok.push(ok);
        }
    }
    ws.out.stats = stats;
    ws.out.detections = ws.n_jobs as u64;
    ws.out.tier = ws.tier;
    &ws.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosphere_core::{geosphere_decoder, ZfDetector};
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_modulation::Constellation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tx_frame_dimensions() {
        let cfg = PhyConfig::new(Constellation::Qam16);
        let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| k % 3 == 0).collect();
        let f = transmit_frame(&cfg, &payload);
        assert_eq!(f.symbols.len(), cfg.n_ofdm_symbols());
        for row in &f.symbols {
            assert_eq!(row.len(), cfg.n_subcarriers);
        }
    }

    #[test]
    fn tx_rx_roundtrip_noiseless_chain() {
        // Bypass the channel entirely: receive exactly what was mapped.
        for c in Constellation::ALL {
            let cfg = PhyConfig::new(c);
            let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| (k * 13) % 7 < 3).collect();
            let f = transmit_frame(&cfg, &payload);
            let rx = receive_frame(&cfg, &f.symbols).expect("noiseless chain must verify");
            assert_eq!(rx, payload, "{c:?}");
        }
    }

    #[test]
    fn corrupted_symbols_fail_crc() {
        let cfg = PhyConfig::new(Constellation::Qam16);
        let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| k % 2 == 0).collect();
        let mut f = transmit_frame(&cfg, &payload);
        // Corrupt a whole OFDM symbol beyond what the code can absorb.
        for p in f.symbols[1].iter_mut() {
            p.i = -p.i;
            p.q = -p.q;
        }
        assert_eq!(receive_frame(&cfg, &f.symbols), None);
    }

    #[test]
    fn uplink_high_snr_succeeds() {
        let mut rng = StdRng::seed_from_u64(171);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let out = uplink_frame(&cfg, &ch, &geosphere_decoder(), 35.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok), "35 dB, 2x4: all frames should pass");
        assert!(out.detections > 0);
        assert!(out.stats.ped_calcs > 0);
    }

    #[test]
    fn uplink_low_snr_fails() {
        let mut rng = StdRng::seed_from_u64(172);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam64) };
        let ch = RayleighChannel::new(4, 4).realize(&mut rng);
        let out = uplink_frame(&cfg, &ch, &ZfDetector, -5.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| !ok), "-5 dB 64-QAM: frames must fail");
    }

    #[test]
    fn batched_decode_bit_identical_to_serial() {
        // Same RNG seed → serial and batched paths must agree exactly, at
        // every worker count, including op counts — through both the
        // one-shot and workspace-recycling entry points.
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        let mut chan_rng = StdRng::seed_from_u64(271);
        let ch = RayleighChannel::new(4, 2).realize(&mut chan_rng);
        let det = geosphere_decoder();

        let mut rng = StdRng::seed_from_u64(272);
        let serial = uplink_frame(&cfg, &ch, &det, 18.0, &mut rng);
        let mut ws = FrameWorkspace::new();
        for workers in [1, 2, 4] {
            let mut rng = StdRng::seed_from_u64(272);
            let batched = decode_frame_batched(&cfg, &ch, &det, 18.0, &mut rng, workers);
            assert_eq!(batched.client_ok, serial.client_ok, "workers {workers}");
            assert_eq!(batched.stats, serial.stats, "workers {workers}");
            assert_eq!(batched.detections, serial.detections, "workers {workers}");

            let mut rng = StdRng::seed_from_u64(272);
            let pooled =
                decode_frame_batched_into(&cfg, &ch, &det, 18.0, &mut rng, workers, &mut ws);
            assert_eq!(pooled.client_ok, serial.client_ok, "pooled workers {workers}");
            assert_eq!(pooled.stats, serial.stats, "pooled workers {workers}");
            assert_eq!(pooled.detections, serial.detections, "pooled workers {workers}");
        }
    }

    #[test]
    fn detections_count_matches_grid() {
        let mut rng = StdRng::seed_from_u64(173);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qpsk) };
        let ch = RayleighChannel::new(2, 2).realize(&mut rng);
        let out = uplink_frame(&cfg, &ch, &ZfDetector, 30.0, &mut rng);
        assert_eq!(out.detections, (cfg.n_ofdm_symbols() * cfg.n_subcarriers) as u64);
    }
}
