//! The transmit and receive chains.
//!
//! Per-client transmit pipeline (§4 of the paper, mirroring 802.11):
//! payload → CRC-32 → pad → scramble → rate-1/2 convolutional code (+tail)
//! → puncture → per-OFDM-symbol interleave → Gray QAM mapping → one grid
//! symbol per (OFDM symbol, subcarrier).
//!
//! The uplink receive pipeline runs a [`MimoDetector`] per (OFDM symbol,
//! subcarrier) on the stacked clients' symbols, then inverts the chain per
//! client and checks the CRC — frame success is what the throughput
//! figures count.

use crate::config::PhyConfig;
use geosphere_core::{
    BatchDetector, Detection, DetectionBatch, DetectionJob, DetectorStats, MimoDetector,
};
use gs_channel::{sample_cn, MimoChannel};
use gs_coding::{
    conv, depuncture, interleave::Interleaver, puncture, scramble::Scrambler, viterbi,
};
use gs_linalg::Complex;
use gs_modulation::{map_bitstream, unmap_points, GridPoint};
use rand::Rng;

/// A transmitted client frame: the original payload and the grid-domain
/// symbol plan `[ofdm_symbol][subcarrier]`.
#[derive(Clone, Debug)]
pub struct TxFrame {
    /// The information payload (pre-CRC).
    pub payload: Vec<bool>,
    /// Symbols per OFDM symbol per subcarrier.
    pub symbols: Vec<Vec<GridPoint>>,
}

/// Encodes one client frame.
///
/// # Panics
/// Panics when `payload.len() != cfg.payload_bits`.
pub fn transmit_frame(cfg: &PhyConfig, payload: &[bool]) -> TxFrame {
    assert_eq!(payload.len(), cfg.payload_bits, "payload length mismatch");
    let c = cfg.constellation;

    // Payload + CRC + pad, scrambled (the tail is appended by the encoder
    // and must stay zero, so scrambling covers only the data region).
    let mut info = gs_coding::append_crc(payload);
    info.extend(std::iter::repeat_n(false, cfg.pad_bits()));
    Scrambler::default_seed().apply_in_place(&mut info);

    // Convolutional code (appends the 6-bit tail), then puncturing.
    let mother = conv::encode(&info);
    let coded = puncture(&mother, cfg.code_rate);
    debug_assert_eq!(coded.len(), cfg.n_ofdm_symbols() * cfg.n_cbps());

    // Per-OFDM-symbol interleaving, then Gray mapping.
    let il = Interleaver::new(cfg.n_cbps(), c.bits_per_symbol());
    let interleaved = il.interleave_stream(&coded);
    let points = map_bitstream(c, &interleaved);

    let symbols: Vec<Vec<GridPoint>> =
        points.chunks(cfg.n_subcarriers).map(|ch| ch.to_vec()).collect();
    TxFrame { payload: payload.to_vec(), symbols }
}

/// Decodes one client's detected grid symbols back to a payload, returning
/// `Some(payload)` only when the CRC verifies.
pub fn receive_frame(cfg: &PhyConfig, detected: &[Vec<GridPoint>]) -> Option<Vec<bool>> {
    let c = cfg.constellation;
    let flat: Vec<GridPoint> = detected.iter().flatten().copied().collect();
    let bits = unmap_points(c, &flat);
    let il = Interleaver::new(cfg.n_cbps(), c.bits_per_symbol());
    let deinterleaved = il.deinterleave_stream(&bits);
    // `total_info_bits` already includes the 6-bit tail, so the mother
    // (rate-1/2) stream is exactly twice it.
    let mother_len = 2 * cfg.total_info_bits();
    let symbols = depuncture(&deinterleaved, cfg.code_rate, mother_len);
    let mut info = viterbi::decode_with_erasures(&symbols);
    Scrambler::default_seed().apply_in_place(&mut info);
    info.truncate(cfg.payload_bits + 32); // drop pad
    gs_coding::check_crc(&info)
}

/// Result of one multi-user uplink frame exchange.
#[derive(Clone, Debug)]
pub struct UplinkOutcome {
    /// Per-client frame success (CRC verified).
    pub client_ok: Vec<bool>,
    /// Detector operation counts accumulated over the frame.
    pub stats: DetectorStats,
    /// Number of detector invocations (OFDM symbols × subcarriers) —
    /// divide `stats` by this for the paper's per-subcarrier averages.
    pub detections: u64,
}

/// Simulates one uplink frame: every client transmits simultaneously
/// through `channel` at the given SNR; the AP detects with `detector`.
///
/// `channel` must have either one subcarrier (flat — reused for all) or
/// exactly `cfg.n_subcarriers`.
pub fn uplink_frame<R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
) -> UplinkOutcome {
    uplink_frame_with_csi(cfg, channel, None, detector, snr_db, rng)
}

/// Like [`uplink_frame`] but detects with (possibly imperfect) channel
/// state information `csi` while the air uses `channel` — the path used to
/// study estimated-CSI performance (see [`crate::chanest`]). `None` means
/// genie CSI.
pub fn uplink_frame_with_csi<R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    csi: Option<&MimoChannel>,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
) -> UplinkOutcome {
    let plan = plan_uplink_frame(cfg, channel, csi, snr_db, rng);
    // The serial reference path: fresh preprocessing per detection, exactly
    // as a subcarrier-at-a-time receiver would run.
    let batch =
        DetectionBatch { channels: &plan.rx_channels, jobs: &plan.jobs, c: cfg.constellation };
    let detections = batch.detect_serial(detector);
    assemble_outcome(cfg, &plan, detections)
}

/// Like [`uplink_frame`] but fans the frame's per-subcarrier sphere
/// searches out across `workers` threads (`0` = machine parallelism) and
/// amortizes per-subcarrier channel preprocessing across the frame's OFDM
/// symbols via [`MimoDetector::detect_batch`]. Each worker owns one search
/// workspace for its whole job chunk (see
/// [`geosphere_core::SearchWorkspace`]), so the frame's inner decode loop
/// performs no per-symbol heap allocation after warmup.
///
/// Output is **bit-identical** to [`uplink_frame`] for the same `rng`
/// state, at every worker count: all randomness (payloads, then noise in
/// OFDM-symbol-major order) is drawn before detection begins, in the same
/// order the serial path draws it, and detection is a pure function of the
/// planned problems.
pub fn decode_frame_batched<R: Rng + ?Sized, D: MimoDetector + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    detector: &D,
    snr_db: f64,
    rng: &mut R,
    workers: usize,
) -> UplinkOutcome {
    let plan = plan_uplink_frame(cfg, channel, None, snr_db, rng);
    let batch =
        DetectionBatch { channels: &plan.rx_channels, jobs: &plan.jobs, c: cfg.constellation };
    let detections = BatchDetector::new(detector, workers).detect_batch(&batch);
    assemble_outcome(cfg, &plan, detections)
}

/// Everything about one uplink frame except the detections: the per-client
/// transmitted frames, the detector's channel table, and one detection job
/// per (OFDM symbol, subcarrier) in OFDM-symbol-major order.
struct UplinkPlan {
    frames: Vec<TxFrame>,
    rx_channels: Vec<gs_linalg::Matrix>,
    jobs: Vec<DetectionJob>,
    n_sym: usize,
}

/// Draws every random quantity of the frame — client payloads, then
/// per-(symbol, subcarrier) noise — in the fixed order both the serial and
/// batched receive paths share, and packages the resulting detection
/// problems.
fn plan_uplink_frame<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    csi: Option<&MimoChannel>,
    snr_db: f64,
    rng: &mut R,
) -> UplinkPlan {
    let nc = channel.num_tx();
    let na = channel.num_rx();
    let c = cfg.constellation;
    assert!(
        channel.num_subcarriers() == 1 || channel.num_subcarriers() == cfg.n_subcarriers,
        "channel subcarrier count must be 1 or {}",
        cfg.n_subcarriers
    );

    // Per-client frames with random payloads.
    let frames: Vec<TxFrame> = (0..nc)
        .map(|_| {
            let payload: Vec<bool> = (0..cfg.payload_bits).map(|_| rng.gen_bool(0.5)).collect();
            transmit_frame(cfg, &payload)
        })
        .collect();
    let n_sym = frames[0].symbols.len();

    // Grid-domain channel: fold the constellation scale into H so grid
    // symbols fly at unit average power.
    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);
    let grid_channels: Vec<gs_linalg::Matrix> =
        channel.iter().map(|m| m.scale(c.scale())).collect();
    // The detector's view of the channel: genie (the truth) or supplied CSI.
    let rx_channels: Vec<gs_linalg::Matrix> = match csi {
        Some(est) => {
            assert_eq!(est.num_rx(), na, "CSI antenna mismatch");
            assert_eq!(est.num_tx(), nc, "CSI stream mismatch");
            est.iter().map(|m| m.scale(c.scale())).collect()
        }
        None => grid_channels.clone(),
    };

    let mut jobs = Vec::with_capacity(n_sym * cfg.n_subcarriers);
    for t in 0..n_sym {
        for k in 0..cfg.n_subcarriers {
            let h = &grid_channels[k % grid_channels.len()];
            let s: Vec<GridPoint> = (0..nc).map(|cl| frames[cl].symbols[t][k]).collect();
            let mut y: Vec<Complex> = geosphere_core::apply_channel(h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(rng, sigma2);
            }
            debug_assert_eq!(y.len(), na);
            jobs.push(DetectionJob { channel: k % rx_channels.len(), y });
        }
    }

    UplinkPlan { frames, rx_channels, jobs, n_sym }
}

/// Inverts the per-client receive chains over the detected symbols and
/// aggregates detector statistics (job order, so counts are reproducible).
fn assemble_outcome(
    cfg: &PhyConfig,
    plan: &UplinkPlan,
    detections: Vec<Detection>,
) -> UplinkOutcome {
    let nc = plan.frames.len();
    let n_detections = detections.len() as u64;
    let mut stats = DetectorStats::default();
    let mut detected: Vec<Vec<Vec<GridPoint>>> =
        vec![vec![Vec::with_capacity(cfg.n_subcarriers); plan.n_sym]; nc];

    for (idx, Detection { symbols, stats: st }) in detections.into_iter().enumerate() {
        let t = idx / cfg.n_subcarriers;
        stats += st;
        for cl in 0..nc {
            detected[cl][t].push(symbols[cl]);
        }
    }

    let client_ok: Vec<bool> = (0..nc)
        .map(|cl| {
            receive_frame(cfg, &detected[cl]).map(|p| p == plan.frames[cl].payload).unwrap_or(false)
        })
        .collect();

    UplinkOutcome { client_ok, stats, detections: n_detections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosphere_core::{geosphere_decoder, ZfDetector};
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_modulation::Constellation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tx_frame_dimensions() {
        let cfg = PhyConfig::new(Constellation::Qam16);
        let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| k % 3 == 0).collect();
        let f = transmit_frame(&cfg, &payload);
        assert_eq!(f.symbols.len(), cfg.n_ofdm_symbols());
        for row in &f.symbols {
            assert_eq!(row.len(), cfg.n_subcarriers);
        }
    }

    #[test]
    fn tx_rx_roundtrip_noiseless_chain() {
        // Bypass the channel entirely: receive exactly what was mapped.
        for c in Constellation::ALL {
            let cfg = PhyConfig::new(c);
            let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| (k * 13) % 7 < 3).collect();
            let f = transmit_frame(&cfg, &payload);
            let rx = receive_frame(&cfg, &f.symbols).expect("noiseless chain must verify");
            assert_eq!(rx, payload, "{c:?}");
        }
    }

    #[test]
    fn corrupted_symbols_fail_crc() {
        let cfg = PhyConfig::new(Constellation::Qam16);
        let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| k % 2 == 0).collect();
        let mut f = transmit_frame(&cfg, &payload);
        // Corrupt a whole OFDM symbol beyond what the code can absorb.
        for p in f.symbols[1].iter_mut() {
            p.i = -p.i;
            p.q = -p.q;
        }
        assert_eq!(receive_frame(&cfg, &f.symbols), None);
    }

    #[test]
    fn uplink_high_snr_succeeds() {
        let mut rng = StdRng::seed_from_u64(171);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let out = uplink_frame(&cfg, &ch, &geosphere_decoder(), 35.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok), "35 dB, 2x4: all frames should pass");
        assert!(out.detections > 0);
        assert!(out.stats.ped_calcs > 0);
    }

    #[test]
    fn uplink_low_snr_fails() {
        let mut rng = StdRng::seed_from_u64(172);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam64) };
        let ch = RayleighChannel::new(4, 4).realize(&mut rng);
        let out = uplink_frame(&cfg, &ch, &ZfDetector, -5.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| !ok), "-5 dB 64-QAM: frames must fail");
    }

    #[test]
    fn batched_decode_bit_identical_to_serial() {
        // Same RNG seed → serial and batched paths must agree exactly, at
        // every worker count, including op counts.
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        let mut chan_rng = StdRng::seed_from_u64(271);
        let ch = RayleighChannel::new(4, 2).realize(&mut chan_rng);
        let det = geosphere_decoder();

        let mut rng = StdRng::seed_from_u64(272);
        let serial = uplink_frame(&cfg, &ch, &det, 18.0, &mut rng);
        for workers in [1, 2, 4] {
            let mut rng = StdRng::seed_from_u64(272);
            let batched = decode_frame_batched(&cfg, &ch, &det, 18.0, &mut rng, workers);
            assert_eq!(batched.client_ok, serial.client_ok, "workers {workers}");
            assert_eq!(batched.stats, serial.stats, "workers {workers}");
            assert_eq!(batched.detections, serial.detections, "workers {workers}");
        }
    }

    #[test]
    fn detections_count_matches_grid() {
        let mut rng = StdRng::seed_from_u64(173);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qpsk) };
        let ch = RayleighChannel::new(2, 2).realize(&mut rng);
        let out = uplink_frame(&cfg, &ch, &ZfDetector, 30.0, &mut rng);
        assert_eq!(out.detections, (cfg.n_ofdm_symbols() * cfg.n_subcarriers) as u64);
    }
}
