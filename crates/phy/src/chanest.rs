//! Preamble-based channel estimation.
//!
//! The paper's WARP receivers estimate the uplink channel from frame
//! preambles before detection; the evaluation pipeline normally uses genie
//! CSI (documented in DESIGN.md §3). This module closes that gap: clients
//! transmit **time-orthogonal long training fields** (one preamble slot per
//! client, two repetitions each, as in 802.11n HT-LTFs with a trivial P
//! matrix), and the AP least-squares-estimates every `(antenna, client)`
//! channel coefficient per subcarrier plus the noise variance from the
//! repetition residual.

use gs_channel::{sample_cn, MimoChannel};
use gs_linalg::{Complex, Matrix};
use rand::Rng;

/// Number of repetitions of each client's training symbol (the repetition
/// difference yields the noise-variance estimate).
pub const LTF_REPEATS: usize = 2;

/// The deterministic per-subcarrier training symbol: unit-magnitude BPSK
/// (+1/−1 in a fixed pseudo-random pattern shared by transmitter and
/// receiver).
pub fn ltf_symbol(subcarrier: usize) -> Complex {
    // A small LFSR-flavoured fixed pattern; what matters is unit magnitude
    // and that both ends agree.
    if (subcarrier * 7 + 3) % 5 < 2 {
        Complex::real(-1.0)
    } else {
        Complex::real(1.0)
    }
}

/// A channel estimate: per-subcarrier matrices plus estimated noise power.
#[derive(Clone, Debug)]
pub struct ChannelEstimate {
    /// Estimated per-subcarrier channel matrices (grid of the *physical*
    /// channel — the caller applies constellation scaling exactly as with
    /// genie CSI).
    pub channel: MimoChannel,
    /// Estimated complex noise variance per receive antenna.
    pub noise_variance: f64,
    /// Preamble airtime in OFDM symbols (`clients × LTF_REPEATS`).
    pub preamble_symbols: usize,
}

/// Runs the preamble exchange: every client sends its training slots
/// through `truth`, the AP estimates. Returns the estimate.
pub fn estimate_channel<R: Rng + ?Sized>(
    truth: &MimoChannel,
    snr_db: f64,
    rng: &mut R,
) -> ChannelEstimate {
    let na = truth.num_rx();
    let nc = truth.num_tx();
    let n_sc = truth.num_subcarriers();
    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);

    // received[slot][rep][subcarrier][antenna]
    let mut estimates: Vec<Matrix> = (0..n_sc).map(|_| Matrix::zeros(na, nc)).collect();
    let mut noise_acc = 0.0f64;
    let mut noise_terms = 0usize;

    for client in 0..nc {
        for k in 0..n_sc {
            let h = truth.subcarrier(k % truth.num_subcarriers());
            let p = ltf_symbol(k);
            // Two repetitions of the solo training symbol.
            let mut reps: Vec<Vec<Complex>> = Vec::with_capacity(LTF_REPEATS);
            for _ in 0..LTF_REPEATS {
                let rx: Vec<Complex> =
                    (0..na).map(|r| h[(r, client)] * p + sample_cn(rng, sigma2)).collect();
                reps.push(rx);
            }
            // LS estimate: average the repetitions, divide by the pilot.
            for r in 0..na {
                let avg = (reps[0][r] + reps[1][r]) / LTF_REPEATS as f64;
                estimates[k][(r, client)] = avg / p;
                // Repetition difference is pure noise with variance 2σ².
                let diff = reps[0][r] - reps[1][r];
                noise_acc += diff.norm_sqr() / 2.0;
                noise_terms += 1;
            }
        }
    }

    ChannelEstimate {
        channel: MimoChannel::new(estimates),
        noise_variance: noise_acc / noise_terms.max(1) as f64,
        preamble_symbols: nc * LTF_REPEATS,
    }
}

/// Mean squared estimation error per channel entry, against the truth —
/// for diagnostics and tests.
pub fn estimation_mse(truth: &MimoChannel, est: &MimoChannel) -> f64 {
    assert_eq!(truth.num_subcarriers(), est.num_subcarriers());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, e) in truth.iter().zip(est.iter()) {
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                acc += (t[(r, c)] - e[(r, c)]).norm_sqr();
                n += 1;
            }
        }
    }
    acc / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::{ChannelModel, RayleighChannel, SelectiveRayleighChannel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ltf_symbols_unit_magnitude() {
        for k in 0..48 {
            assert!((ltf_symbol(k).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn estimate_converges_with_snr() {
        let mut rng = StdRng::seed_from_u64(701);
        let truth = RayleighChannel::new(4, 3).realize(&mut rng);
        let mse_low = estimation_mse(&truth, &estimate_channel(&truth, 10.0, &mut rng).channel);
        let mse_high = estimation_mse(&truth, &estimate_channel(&truth, 30.0, &mut rng).channel);
        assert!(mse_high < mse_low / 10.0, "mse {mse_high} vs {mse_low}");
        // LS with 2 repetitions: MSE ≈ σ²/2 per entry.
        let sigma2 = gs_channel::noise_variance_for_snr_db(30.0);
        assert!(mse_high < sigma2, "mse {mse_high} should be below σ² = {sigma2}");
    }

    #[test]
    fn noise_variance_estimated_accurately() {
        let mut rng = StdRng::seed_from_u64(702);
        let truth = SelectiveRayleighChannel::indoor(4, 4).realize(&mut rng);
        let est = estimate_channel(&truth, 20.0, &mut rng);
        let sigma2 = gs_channel::noise_variance_for_snr_db(20.0);
        assert!(
            (est.noise_variance / sigma2 - 1.0).abs() < 0.2,
            "estimated {} vs true {}",
            est.noise_variance,
            sigma2
        );
    }

    #[test]
    fn preamble_length_accounting() {
        let mut rng = StdRng::seed_from_u64(703);
        let truth = RayleighChannel::new(4, 3).realize(&mut rng);
        let est = estimate_channel(&truth, 20.0, &mut rng);
        assert_eq!(est.preamble_symbols, 6);
        assert_eq!(est.channel.num_rx(), 4);
        assert_eq!(est.channel.num_tx(), 3);
    }

    #[test]
    fn detection_with_estimated_csi_works_at_high_snr() {
        use crate::txrx::uplink_frame_with_csi;
        use crate::PhyConfig;
        use geosphere_core::geosphere_decoder;
        use gs_modulation::Constellation;

        let mut rng = StdRng::seed_from_u64(704);
        let truth = RayleighChannel::new(4, 2).realize(&mut rng);
        let est = estimate_channel(&truth, 35.0, &mut rng);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        // The air uses the true channel; the detector sees only the
        // estimate. At 35 dB the estimation error is negligible.
        let out = uplink_frame_with_csi(
            &cfg,
            &truth,
            Some(&est.channel),
            &geosphere_decoder(),
            35.0,
            &mut rng,
        );
        assert!(out.client_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn garbage_csi_destroys_frames() {
        use crate::txrx::uplink_frame_with_csi;
        use crate::PhyConfig;
        use geosphere_core::geosphere_decoder;
        use gs_modulation::Constellation;

        let mut rng = StdRng::seed_from_u64(705);
        let truth = RayleighChannel::new(4, 2).realize(&mut rng);
        let garbage = RayleighChannel::new(4, 2).realize(&mut rng);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        let out = uplink_frame_with_csi(
            &cfg,
            &truth,
            Some(&garbage),
            &geosphere_decoder(),
            35.0,
            &mut rng,
        );
        assert!(out.client_ok.iter().all(|&ok| !ok), "wrong CSI must kill detection");
    }
}
