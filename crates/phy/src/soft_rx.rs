//! Soft-decision receive chain.
//!
//! The hard pipeline of [`crate::txrx`] slices symbols and hands hard bits
//! to the Viterbi decoder; this module instead carries per-bit LLRs from
//! the soft-output Geosphere detector all the way through deinterleaving
//! and soft depuncturing into a soft Viterbi decode — the paper's §7
//! direction, worth 1–2 dB of coding gain over hard decisions.
//!
//! [`uplink_frame_soft_into`] is the steady-state form: one
//! [`FrameWorkspace`] owns the per-client LLR streams, the soft search
//! workspace, and the soft Viterbi scratch, so a warmed receive loop
//! performs zero heap allocations per frame (enforced by
//! `tests/alloc_regression.rs`).

use crate::config::PhyConfig;
use crate::frame::{FrameWorkspace, RxScratch};
use crate::txrx::{plan_transmit_into, UplinkOutcome};
use geosphere_core::{apply_channel_into, DetectorStats, SoftGeosphereDetector};
use gs_channel::{sample_cn, MimoChannel};
use gs_coding::{
    check_crc_ok, conv, depuncture_soft_into, interleave::Interleaver, scramble::Scrambler, viterbi,
};
use rand::Rng;

/// Decodes one client's LLR stream (frame order) back to a verified
/// payload.
///
/// `llrs` must hold `n_ofdm_symbols × n_cbps` entries in transmitted bit
/// order (symbol-major, `Q` bits per subcarrier symbol, MSB first).
pub fn receive_frame_soft(cfg: &PhyConfig, llrs: &[f64]) -> Option<Vec<bool>> {
    let mut rx = RxScratch::default();
    if receive_frame_soft_into(cfg, llrs, &mut rx) {
        rx.info.truncate(cfg.payload_bits);
        Some(rx.info)
    } else {
        None
    }
}

/// The soft receive chain with every intermediate in reused scratch.
/// Returns whether the CRC verified; the decoded information bits
/// (payload + CRC) are left in `rx.info`.
pub(crate) fn receive_frame_soft_into(cfg: &PhyConfig, llrs: &[f64], rx: &mut RxScratch) -> bool {
    let _prof = gs_prof::scope(gs_prof::Stage::Recover);
    _prof.add_bytes(cfg.payload_bits as u64 / 8);
    let c = cfg.constellation;
    let il = Interleaver::new(cfg.n_cbps(), c.bits_per_symbol());
    il.deinterleave_values_stream_into(llrs, &mut rx.llr_deint);
    let mother_len = 2 * cfg.total_info_bits();
    depuncture_soft_into(&rx.llr_deint, cfg.code_rate, mother_len, &mut rx.mother_soft);
    viterbi::decode_soft_into(&rx.mother_soft, &mut rx.vit, &mut rx.info);
    Scrambler::default_seed().apply_in_place(&mut rx.info);
    rx.info.truncate(cfg.payload_bits + 32);
    check_crc_ok(&rx.info)
}

/// Simulates one uplink frame with **soft** detection and decoding.
///
/// Mirrors [`crate::txrx::uplink_frame`] but runs the soft-output
/// Geosphere detector per (OFDM symbol, subcarrier) and soft Viterbi per
/// client.
pub fn uplink_frame_soft<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    snr_db: f64,
    rng: &mut R,
) -> UplinkOutcome {
    let mut ws = FrameWorkspace::new();
    uplink_frame_soft_into(cfg, channel, snr_db, rng, &mut ws).clone()
}

/// [`uplink_frame_soft`] recycling a [`FrameWorkspace`]: bit-identical for
/// the same `rng` state, and allocation-free per frame after warmup — the
/// transmit plan, the per-symbol soft searches (via the workspace's
/// [`SoftWorkspace`](geosphere_core::SoftWorkspace)), the per-client LLR
/// streams, and the soft Viterbi decode all reuse the workspace's buffers.
pub fn uplink_frame_soft_into<'w, R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    snr_db: f64,
    rng: &mut R,
    ws: &'w mut FrameWorkspace,
) -> &'w UplinkOutcome {
    let nc = channel.num_tx();
    let c = cfg.constellation;
    let q = c.bits_per_symbol();
    // Payload draws + transmit chains + grid-channel refresh, in the seed
    // RNG order shared with the hard and iterative paths.
    let (n_sym, n_grid) = plan_transmit_into(cfg, channel, rng, ws);
    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);
    let detector = SoftGeosphereDetector::new(sigma2);

    let mut stats = DetectorStats::default();
    let mut detections = 0u64;
    if ws.llrs.len() < nc {
        ws.llrs.resize_with(nc, Vec::new);
    }
    for l in ws.llrs.iter_mut().take(nc) {
        l.clear();
    }

    // One workspace + output pair for the whole frame: every per-symbol
    // soft detection reuses the same search state, QR factors, and LLR
    // buffers (bit-identical to per-call `detect_soft`, without its
    // allocations).
    for t in 0..n_sym {
        for k in 0..cfg.n_subcarriers {
            let FrameWorkspace {
                symbols,
                grid_channels,
                s_buf,
                y_buf,
                soft_ws,
                soft_out,
                llrs,
                ..
            } = ws;
            let h = &grid_channels[k % n_grid];
            s_buf.clear();
            s_buf.extend((0..nc).map(|cl| symbols[cl][t * cfg.n_subcarriers + k]));
            apply_channel_into(h, s_buf, y_buf);
            for v in y_buf.iter_mut() {
                *v += sample_cn(rng, sigma2);
            }
            detector.detect_soft_into(h, y_buf, c, soft_ws, soft_out);
            stats += soft_out.stats;
            detections += 1;
            for cl in 0..nc {
                llrs[cl].extend_from_slice(&soft_out.llrs[cl * q..(cl + 1) * q]);
            }
        }
    }

    ws.out.client_ok.clear();
    for cl in 0..nc {
        let FrameWorkspace { payloads, llrs, rx, out, .. } = ws;
        let ok = receive_frame_soft_into(cfg, &llrs[cl], rx)
            && rx.info[..cfg.payload_bits] == payloads[cl][..];
        out.client_ok.push(ok);
    }
    ws.out.stats = stats;
    ws.out.detections = detections;
    &ws.out
}

/// The `conv` re-import keeps the mother-length arithmetic near its
/// definition for readers.
const _: () = {
    let _ = conv::CONSTRAINT;
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txrx::{transmit_frame, uplink_frame};
    use geosphere_core::geosphere_decoder;
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_modulation::{unmap_points, Constellation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(c: Constellation) -> PhyConfig {
        PhyConfig { payload_bits: 512, ..PhyConfig::new(c) }
    }

    #[test]
    fn soft_rx_roundtrip_from_strong_llrs() {
        let cfg = cfg(Constellation::Qam16);
        let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| k % 5 < 2).collect();
        let f = transmit_frame(&cfg, &payload);
        // Perfect LLRs derived from the transmitted bits themselves.
        let flat: Vec<_> = f.symbols.iter().flatten().copied().collect();
        let bits = unmap_points(cfg.constellation, &flat);
        let llrs: Vec<f64> = bits.iter().map(|&b| if b { -6.0 } else { 6.0 }).collect();
        assert_eq!(receive_frame_soft(&cfg, &llrs), Some(payload));
    }

    #[test]
    fn soft_uplink_succeeds_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(501);
        let cfg = cfg(Constellation::Qam16);
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let out = uplink_frame_soft(&cfg, &ch, 32.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn soft_into_reused_workspace_is_bit_identical() {
        let cfg = cfg(Constellation::Qam16);
        let model = RayleighChannel::new(4, 2);
        let mut ws = FrameWorkspace::new();
        for trial in 0..3 {
            let mut rng = StdRng::seed_from_u64(520 + trial);
            let ch = model.realize(&mut rng);
            let fresh = uplink_frame_soft(&cfg, &ch, 20.0, &mut rng);
            let mut rng = StdRng::seed_from_u64(520 + trial);
            let ch = model.realize(&mut rng);
            let reused = uplink_frame_soft_into(&cfg, &ch, 20.0, &mut rng, &mut ws);
            assert_eq!(reused.client_ok, fresh.client_ok, "trial {trial}");
            assert_eq!(reused.stats, fresh.stats, "trial {trial}");
            assert_eq!(reused.detections, fresh.detections, "trial {trial}");
        }
    }

    #[test]
    fn soft_beats_hard_at_marginal_snr() {
        // The whole point of soft decoding: at an SNR where hard-decision
        // frames die, soft frames survive more often.
        let cfg = cfg(Constellation::Qam16);
        let model = RayleighChannel::new(4, 4);
        let mut hard_ok = 0usize;
        let mut soft_ok = 0usize;
        let trials = 12;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(600 + t);
            let ch = model.realize(&mut rng);
            let hard = uplink_frame(&cfg, &ch, &geosphere_decoder(), 17.0, &mut rng);
            hard_ok += hard.client_ok.iter().filter(|&&ok| ok).count();
            let mut rng = StdRng::seed_from_u64(600 + t);
            let ch = model.realize(&mut rng);
            let soft = uplink_frame_soft(&cfg, &ch, 17.0, &mut rng);
            soft_ok += soft.client_ok.iter().filter(|&&ok| ok).count();
        }
        assert!(
            soft_ok >= hard_ok,
            "soft ({soft_ok}) must not lose to hard ({hard_ok}) at marginal SNR"
        );
    }
}
