//! Soft-decision receive chain.
//!
//! The hard pipeline of [`crate::txrx`] slices symbols and hands hard bits
//! to the Viterbi decoder; this module instead carries per-bit LLRs from
//! the soft-output Geosphere detector all the way through deinterleaving
//! and soft depuncturing into a soft Viterbi decode — the paper's §7
//! direction, worth 1–2 dB of coding gain over hard decisions.

use crate::config::PhyConfig;
use crate::txrx::{transmit_frame, UplinkOutcome};
use geosphere_core::{DetectorStats, SoftDetection, SoftGeosphereDetector};
use gs_channel::{sample_cn, MimoChannel};
use gs_coding::{conv, depuncture_soft, interleave::Interleaver, scramble::Scrambler, viterbi};
use gs_linalg::Complex;
use rand::Rng;

/// Decodes one client's LLR stream (frame order) back to a verified
/// payload.
///
/// `llrs` must hold `n_ofdm_symbols × n_cbps` entries in transmitted bit
/// order (symbol-major, `Q` bits per subcarrier symbol, MSB first).
pub fn receive_frame_soft(cfg: &PhyConfig, llrs: &[f64]) -> Option<Vec<bool>> {
    let c = cfg.constellation;
    let il = Interleaver::new(cfg.n_cbps(), c.bits_per_symbol());
    let deinterleaved = il.deinterleave_values_stream(llrs);
    let mother_len = 2 * cfg.total_info_bits();
    let soft = depuncture_soft(&deinterleaved, cfg.code_rate, mother_len);
    let mut info = viterbi::decode_soft(&soft);
    Scrambler::default_seed().apply_in_place(&mut info);
    info.truncate(cfg.payload_bits + 32);
    gs_coding::check_crc(&info)
}

/// Simulates one uplink frame with **soft** detection and decoding.
///
/// Mirrors [`crate::txrx::uplink_frame`] but runs the soft-output
/// Geosphere detector per (OFDM symbol, subcarrier) and soft Viterbi per
/// client.
pub fn uplink_frame_soft<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    snr_db: f64,
    rng: &mut R,
) -> UplinkOutcome {
    let nc = channel.num_tx();
    let c = cfg.constellation;
    let q = c.bits_per_symbol();
    assert!(
        channel.num_subcarriers() == 1 || channel.num_subcarriers() == cfg.n_subcarriers,
        "channel subcarrier count must be 1 or {}",
        cfg.n_subcarriers
    );

    let frames: Vec<_> = (0..nc)
        .map(|_| {
            let payload: Vec<bool> = (0..cfg.payload_bits).map(|_| rng.gen_bool(0.5)).collect();
            transmit_frame(cfg, &payload)
        })
        .collect();
    let n_sym = frames[0].symbols.len();

    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);
    let grid_channels: Vec<gs_linalg::Matrix> =
        channel.iter().map(|m| m.scale(c.scale())).collect();
    let detector = SoftGeosphereDetector::new(sigma2);

    let mut stats = DetectorStats::default();
    let mut detections = 0u64;
    let mut llr_streams: Vec<Vec<f64>> = vec![Vec::with_capacity(n_sym * cfg.n_cbps()); nc];

    // One workspace + output pair for the whole frame: every per-symbol
    // soft detection reuses the same search state, QR factors, and LLR
    // buffers (bit-identical to per-call `detect_soft`, without its
    // allocations).
    let mut ws = detector.make_workspace();
    let mut soft = SoftDetection::default();
    for t in 0..n_sym {
        for k in 0..cfg.n_subcarriers {
            let h = &grid_channels[k % grid_channels.len()];
            let s: Vec<_> = (0..nc).map(|cl| frames[cl].symbols[t][k]).collect();
            let mut y: Vec<Complex> = geosphere_core::apply_channel(h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(rng, sigma2);
            }
            detector.detect_soft_into(h, &y, c, &mut ws, &mut soft);
            stats += soft.stats;
            detections += 1;
            for cl in 0..nc {
                llr_streams[cl].extend_from_slice(&soft.llrs[cl * q..(cl + 1) * q]);
            }
        }
    }

    let client_ok: Vec<bool> = (0..nc)
        .map(|cl| {
            receive_frame_soft(cfg, &llr_streams[cl])
                .map(|p| p == frames[cl].payload)
                .unwrap_or(false)
        })
        .collect();

    UplinkOutcome { client_ok, stats, detections }
}

/// The `conv` re-import keeps the mother-length arithmetic near its
/// definition for readers.
const _: () = {
    let _ = conv::CONSTRAINT;
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txrx::uplink_frame;
    use geosphere_core::geosphere_decoder;
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_modulation::{unmap_points, Constellation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(c: Constellation) -> PhyConfig {
        PhyConfig { payload_bits: 512, ..PhyConfig::new(c) }
    }

    #[test]
    fn soft_rx_roundtrip_from_strong_llrs() {
        let cfg = cfg(Constellation::Qam16);
        let payload: Vec<bool> = (0..cfg.payload_bits).map(|k| k % 5 < 2).collect();
        let f = transmit_frame(&cfg, &payload);
        // Perfect LLRs derived from the transmitted bits themselves.
        let flat: Vec<_> = f.symbols.iter().flatten().copied().collect();
        let bits = unmap_points(cfg.constellation, &flat);
        let llrs: Vec<f64> = bits.iter().map(|&b| if b { -6.0 } else { 6.0 }).collect();
        assert_eq!(receive_frame_soft(&cfg, &llrs), Some(payload));
    }

    #[test]
    fn soft_uplink_succeeds_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(501);
        let cfg = cfg(Constellation::Qam16);
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let out = uplink_frame_soft(&cfg, &ch, 32.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn soft_beats_hard_at_marginal_snr() {
        // The whole point of soft decoding: at an SNR where hard-decision
        // frames die, soft frames survive more often.
        let cfg = cfg(Constellation::Qam16);
        let model = RayleighChannel::new(4, 4);
        let mut hard_ok = 0usize;
        let mut soft_ok = 0usize;
        let trials = 12;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(600 + t);
            let ch = model.realize(&mut rng);
            let hard = uplink_frame(&cfg, &ch, &geosphere_decoder(), 17.0, &mut rng);
            hard_ok += hard.client_ok.iter().filter(|&&ok| ok).count();
            let mut rng = StdRng::seed_from_u64(600 + t);
            let ch = model.realize(&mut rng);
            let soft = uplink_frame_soft(&cfg, &ch, 17.0, &mut rng);
            soft_ok += soft.client_ok.iter().filter(|&&ok| ok).count();
        }
        assert!(
            soft_ok >= hard_ok,
            "soft ({soft_ok}) must not lose to hard ({hard_ok}) at marginal SNR"
        );
    }
}
