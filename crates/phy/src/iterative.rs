//! Iterative (turbo) MMSE-PIC receiver — the paper's §7 endgame.
//!
//! "While Geosphere increases throughput, iterative soft receiver
//! processing is required to reach MIMO capacity." This module implements
//! the canonical iterative architecture: soft parallel interference
//! cancellation + per-stream MMSE filtering produces per-bit LLRs; a
//! max-log BCJR pass per client returns coded-bit extrinsics; those become
//! symbol priors for the next detection round.
//!
//! Iteration 0 (no priors) reduces to plain soft MMSE detection, so any
//! improvement across iterations is pure turbo gain.
//!
//! The covariance assembly runs on cached per-stream column outer
//! products (`FilterCache::pic_gram`): the products `h_r1,cl · h*_r2,cl`
//! depend only on the channel, so one build per subcarrier serves every
//! OFDM symbol and every turbo iteration of the frame — bit-identically
//! to recomputing them per resource element
//! (`tests/filter_cache_conformance.rs`).

use crate::config::PhyConfig;
use crate::frame::FrameWorkspace;
use crate::txrx::{plan_transmit_into, UplinkOutcome};
use geosphere_core::{apply_channel_into, DetectorStats, FilterCache};
use gs_channel::{sample_cn, MimoChannel};
use gs_coding::{bcjr, depuncture_soft_into, interleave::Interleaver, scramble::Scrambler};
use gs_linalg::{invert, Complex, Matrix};
use gs_modulation::{BitTable, Constellation};
use rand::Rng;

/// Per-symbol prior statistics derived from coded-bit LLRs.
#[derive(Clone, Copy)]
struct SymbolPrior {
    mean: Complex,
    variance: f64,
}

/// Reusable scratch for the iterative receiver, owned by
/// [`FrameWorkspace`]: the received grid, prior/LLR streams, the
/// covariance matrices, and the per-channel Gram cache.
#[derive(Default)]
pub(crate) struct IterScratch {
    /// Received vectors, flattened `[(t * n_subcarriers + k) * na ..][..na]`.
    received: Vec<Complex>,
    /// Per-client coded-bit priors in transmitted order.
    priors: Vec<Vec<f64>>,
    /// Per-client posterior channel LLRs (transmitted order).
    channel_llrs: Vec<Vec<f64>>,
    /// Per-subcarrier cached column outer products.
    cache: FilterCache,
    sp: Vec<SymbolPrior>,
    cov: Matrix,
    cov_cl: Matrix,
    yc: Vec<Complex>,
    h_cl: Vec<Complex>,
    /// Deinterleaved LLRs / depunctured soft mother stream (decode pass).
    deint: Vec<f64>,
    soft: Vec<f64>,
    /// Decoder hard decisions (scrambled back, truncated).
    info: Vec<bool>,
    /// Punctured extrinsics before re-interleaving.
    kept: Vec<f64>,
    /// Extrinsics in transmitted order (swapped into `priors`).
    tx_order: Vec<f64>,
    /// `fetched[k]` = transmitted position feeding logical position `k` of
    /// one OFDM symbol, cached per `(n_cbps, bits_per_symbol)` — both
    /// parameters shape the permutation.
    fetched: Vec<f64>,
    ident: Vec<f64>,
    cached_interleaver: Option<(usize, usize)>,
}

/// Soft symbol statistics from per-bit priors (`Q` LLRs, positive = 0).
fn symbol_stats(c: Constellation, table: &BitTable, llrs: &[f64]) -> SymbolPrior {
    let q = c.bits_per_symbol();
    debug_assert_eq!(llrs.len(), q);
    // P(bit k = 1) = sigmoid(−L).
    let p1: Vec<f64> = llrs.iter().map(|&l| 1.0 / (1.0 + l.exp())).collect();
    let mut mean = Complex::ZERO;
    let mut power = 0.0;
    for p in c.points() {
        let mut prob = 1.0;
        let packed = table.packed(p);
        for (k, &p1k) in p1.iter().enumerate() {
            let bit = (packed >> (q - 1 - k)) & 1 == 1;
            prob *= if bit { p1k } else { 1.0 - p1k };
        }
        mean += p.to_complex() * prob;
        power += p.to_complex().norm_sqr() * prob;
    }
    SymbolPrior { mean, variance: (power - mean.norm_sqr()).max(0.0) }
}

/// Per-bit max-log LLRs from a scalar Gaussian observation `z ≈ μ·s + η`,
/// `η ~ CN(0, v)`, `s` on the grid.
fn scalar_llrs(
    c: Constellation,
    table: &BitTable,
    z: Complex,
    mu: f64,
    v: f64,
    out: &mut Vec<f64>,
) {
    let q = c.bits_per_symbol();
    let mut best0 = vec![f64::INFINITY; q];
    let mut best1 = vec![f64::INFINITY; q];
    for p in c.points() {
        let d = (z - p.to_complex() * mu).norm_sqr() / v.max(1e-12);
        let packed = table.packed(p);
        for k in 0..q {
            let bit = (packed >> (q - 1 - k)) & 1 == 1;
            if bit {
                if d < best1[k] {
                    best1[k] = d;
                }
            } else if d < best0[k] {
                best0[k] = d;
            }
        }
    }
    for k in 0..q {
        out.push((best1[k] - best0[k]).clamp(-30.0, 30.0));
    }
}

/// Runs one uplink frame through the iterative MMSE-PIC receiver.
///
/// `iterations = 1` is plain soft MMSE detection + SISO decoding;
/// each further iteration feeds decoder extrinsics back as symbol priors.
pub fn uplink_frame_iterative<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    snr_db: f64,
    iterations: usize,
    rng: &mut R,
) -> UplinkOutcome {
    let mut ws = FrameWorkspace::new();
    uplink_frame_iterative_into(cfg, channel, snr_db, iterations, rng, &mut ws).clone()
}

/// [`uplink_frame_iterative`] recycling a [`FrameWorkspace`] across frames:
/// bit-identical for the same `rng` state, with the received grid, prior
/// and LLR streams, covariance scratch, and the per-subcarrier Gram cache
/// reused in place (the cache self-invalidates when the channel changes).
pub fn uplink_frame_iterative_into<'w, R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    snr_db: f64,
    iterations: usize,
    rng: &mut R,
    ws: &'w mut FrameWorkspace,
) -> &'w UplinkOutcome {
    assert!(iterations >= 1);
    let nc = channel.num_tx();
    let na = channel.num_rx();
    let c = cfg.constellation;
    let q = c.bits_per_symbol();
    let table = BitTable::new(c);
    let es = c.energy();
    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);

    // Transmit: payload draws + transmit chains + grid-channel refresh,
    // in the seed RNG order shared with the hard and soft paths.
    let (n_sym, n_grid) = plan_transmit_into(cfg, channel, rng, ws);

    // Air: one received vector per (OFDM symbol, subcarrier), flattened.
    ws.iter.received.clear();
    for t in 0..n_sym {
        for k in 0..cfg.n_subcarriers {
            let FrameWorkspace { symbols, grid_channels, s_buf, y_buf, iter, .. } = ws;
            let h = &grid_channels[k % n_grid];
            s_buf.clear();
            s_buf.extend((0..nc).map(|cl| symbols[cl][t * cfg.n_subcarriers + k]));
            apply_channel_into(h, s_buf, y_buf);
            for v in y_buf.iter_mut() {
                *v += sample_cn(rng, sigma2);
            }
            iter.received.extend_from_slice(y_buf);
        }
    }

    // The transmitted-position map of one OFDM symbol: `fetched[k]` = tx
    // index feeding logical `k`. The permutation depends on both the
    // symbol length and the bits-per-subcarrier rotation, so the cache is
    // keyed on the full (n_cbps, Q) pair.
    let il = Interleaver::new(cfg.n_cbps(), q);
    if ws.iter.cached_interleaver != Some((cfg.n_cbps(), q)) {
        ws.iter.ident.clear();
        ws.iter.ident.extend((0..cfg.n_cbps()).map(|v| v as f64));
        let IterScratch { ident, fetched, .. } = &mut ws.iter;
        il.deinterleave_values_stream_into(ident, fetched);
        ws.iter.cached_interleaver = Some((cfg.n_cbps(), q));
    }

    // Iterate. priors[cl] = coded-bit LLRs in *transmitted* (interleaved)
    // order; zeros initially.
    let bits_per_frame = n_sym * cfg.n_cbps();
    if ws.iter.priors.len() < nc {
        ws.iter.priors.resize_with(nc, Vec::new);
    }
    if ws.iter.channel_llrs.len() < nc {
        ws.iter.channel_llrs.resize_with(nc, Vec::new);
    }
    for p in ws.iter.priors.iter_mut().take(nc) {
        p.clear();
        p.resize(bits_per_frame, 0.0);
    }
    let mut stats = DetectorStats::default();
    let mut detections = 0u64;
    ws.out.client_ok.clear();
    ws.out.client_ok.resize(nc, false);

    for _iter in 0..iterations {
        // Detection pass: soft-PIC MMSE per (t, k), producing posterior
        // channel LLRs per bit in transmitted order.
        for l in ws.iter.channel_llrs.iter_mut().take(nc) {
            l.clear();
        }
        for t in 0..n_sym {
            for k in 0..cfg.n_subcarriers {
                let FrameWorkspace { grid_channels, iter, .. } = ws;
                let IterScratch {
                    cache,
                    received,
                    priors,
                    channel_llrs,
                    sp,
                    cov,
                    cov_cl,
                    yc,
                    h_cl,
                    ..
                } = iter;
                let h = &grid_channels[k % n_grid];
                // Cached column outer products for this subcarrier:
                // gram[cl][(r1, r2)] = h[(r1, cl)] · h[(r2, cl)]*.
                let gram = &cache.pic_gram(k % n_grid, h).outer;
                let re_idx = t * cfg.n_subcarriers + k;
                let y = &received[re_idx * na..(re_idx + 1) * na];
                detections += 1;
                // Symbol priors for every stream at this resource element.
                let base = re_idx * q;
                sp.clear();
                sp.extend(
                    priors[..nc].iter().map(|pr| symbol_stats(c, &table, &pr[base..base + q])),
                );
                // Covariance of the residual: H V H* + σ² I, with V the
                // per-stream residual variances (grid domain folded into h).
                cov.reset_zeros(na, na);
                for r1 in 0..na {
                    for r2 in 0..na {
                        let mut acc = Complex::ZERO;
                        for cl in 0..nc {
                            acc += gram[cl][(r1, r2)] * sp[cl].variance;
                        }
                        if r1 == r2 {
                            acc += Complex::real(sigma2);
                        }
                        cov[(r1, r2)] = acc;
                        stats.complex_mults += nc as u64;
                    }
                }
                for cl in 0..nc {
                    // Cancel every other stream's soft mean.
                    yc.clear();
                    yc.extend_from_slice(y);
                    for other in 0..nc {
                        if other == cl {
                            continue;
                        }
                        for (r, v) in yc.iter_mut().enumerate() {
                            *v -= h[(r, other)] * sp[other].mean;
                        }
                    }
                    // Per-stream MMSE filter: w = (cov + h_cl(Es−v_cl)h_cl*)⁻¹h_cl
                    // — adjust cov for this stream's full symbol energy.
                    cov_cl.copy_from(cov);
                    let delta = es - sp[cl].variance;
                    for r1 in 0..na {
                        for r2 in 0..na {
                            cov_cl[(r1, r2)] += gram[cl][(r1, r2)] * delta;
                        }
                    }
                    h_cl.clear();
                    h_cl.extend((0..na).map(|r| h[(r, cl)]));
                    let w = match invert(cov_cl) {
                        Ok(inv) => inv.mul_vec(h_cl),
                        Err(_) => h_cl.clone(),
                    };
                    stats.complex_mults += (na * na) as u64;
                    // z = w* yc ; effective gain mu = w* h_cl (real by
                    // construction up to numerical noise). Both are
                    // cached-filter-row applies through the lane-ordered
                    // conjugated dot kernel.
                    let z = gs_linalg::simd::cdotc(&w, yc);
                    let mu = gs_linalg::simd::cdotc(&w, h_cl);
                    let mu = mu.re.max(1e-12);
                    // Exact post-filter disturbance power: w*·M·w with
                    // M = cov_cl − Es·h_cl h_cl* (everything except the
                    // desired stream: residual interference + thermal).
                    let mut v_eff = 0.0;
                    for r1 in 0..na {
                        for r2 in 0..na {
                            let m = cov_cl[(r1, r2)] - gram[cl][(r1, r2)] * es;
                            v_eff += (w[r1].conj() * m * w[r2]).re;
                        }
                    }
                    let v_eff = v_eff.max(1e-12);
                    stats.complex_mults += (na * na) as u64;
                    scalar_llrs(c, &table, z, mu, v_eff, &mut channel_llrs[cl]);
                    stats.ped_calcs += c.size() as u64;
                }
            }
        }

        // Decoding pass per client: deinterleave, depuncture, SISO decode,
        // re-interleave extrinsics into priors for the next round.
        for cl in 0..nc {
            let FrameWorkspace { payloads, iter, out, .. } = ws;
            il.deinterleave_values_stream_into(&iter.channel_llrs[cl], &mut iter.deint);
            let mother_len = 2 * cfg.total_info_bits();
            depuncture_soft_into(&iter.deint, cfg.code_rate, mother_len, &mut iter.soft);
            let siso = bcjr::siso_decode(&iter.soft);

            // CRC check on this iteration's hard decisions.
            iter.info.clear();
            iter.info.extend_from_slice(&siso.info_bits);
            Scrambler::default_seed().apply_in_place(&mut iter.info);
            iter.info.truncate(cfg.payload_bits + 32);
            if gs_coding::check_crc_ok(&iter.info)
                && iter.info[..cfg.payload_bits] == payloads[cl][..]
            {
                out.client_ok[cl] = true;
            }

            // Extrinsics (mother domain) → puncture → interleave → priors.
            let pat = cfg.code_rate.keep_pattern();
            iter.kept.clear();
            iter.kept.extend(
                siso.coded_extrinsic
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| pat[k % pat.len()])
                    .map(|(_, &l)| l),
            );
            // Interleave positionally: transmitted[j] = kept[k] where
            // j = map(k); realized with the cached per-symbol `fetched` map:
            // fetched[k] = tx index feeding logical k ⇒ tx[fetched[k]] = kept[k].
            iter.tx_order.clear();
            iter.tx_order.resize(iter.kept.len(), 0.0);
            for chunk_start in (0..iter.kept.len()).step_by(cfg.n_cbps()) {
                for (k, &src) in iter.fetched.iter().enumerate() {
                    iter.tx_order[chunk_start + src as usize] = iter.kept[chunk_start + k];
                }
            }
            std::mem::swap(&mut iter.priors[cl], &mut iter.tx_order);
            if std::env::var("GS_TURBO_DEBUG").is_ok() {
                let maxp = iter.priors[cl].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
                let nz = iter.priors[cl].iter().filter(|&&v| v.abs() > 1e-9).count();
                eprintln!(
                    "iter {_iter} client {cl}: max|prior| {maxp:.2}, nonzero {nz}/{}",
                    iter.priors[cl].len()
                );
            }
        }
    }

    ws.out.stats = stats;
    ws.out.detections = detections;
    &ws.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_modulation::GridPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> PhyConfig {
        PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) }
    }

    #[test]
    fn symbol_stats_flat_prior_is_zero_mean_full_variance() {
        let c = Constellation::Qam16;
        let table = BitTable::new(c);
        let sp = symbol_stats(c, &table, &[0.0; 4]);
        assert!(sp.mean.abs() < 1e-12);
        assert!((sp.variance - c.energy()).abs() < 1e-9);
    }

    #[test]
    fn symbol_stats_certain_prior_collapses() {
        let c = Constellation::Qam16;
        let table = BitTable::new(c);
        // Strong priors for a specific point's bits.
        let p = GridPoint { i: 3, q: -1 };
        let bits = gs_modulation::unmap_point(c, p);
        let llrs: Vec<f64> = bits.iter().map(|&b| if b { -30.0 } else { 30.0 }).collect();
        let sp = symbol_stats(c, &table, &llrs);
        assert!((sp.mean - p.to_complex()).abs() < 1e-6);
        assert!(sp.variance < 1e-6);
    }

    #[test]
    fn scalar_llr_signs() {
        let c = Constellation::Qpsk;
        let table = BitTable::new(c);
        let mut out = Vec::new();
        scalar_llrs(c, &table, Complex::new(1.0, -1.0), 1.0, 0.1, &mut out);
        let bits = gs_modulation::unmap_point(c, GridPoint { i: 1, q: -1 });
        for (l, b) in out.iter().zip(&bits) {
            assert_eq!(*l < 0.0, *b);
        }
    }

    #[test]
    fn single_iteration_works_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(971);
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let out = uplink_frame_iterative(&cfg(), &ch, 30.0, 1, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        let model = RayleighChannel::new(4, 2);
        let mut ws = FrameWorkspace::new();
        for trial in 0..3 {
            let mut rng = StdRng::seed_from_u64(7100 + trial);
            let ch = model.realize(&mut rng);
            let fresh = uplink_frame_iterative(&cfg(), &ch, 16.0, 2, &mut rng);
            let mut rng = StdRng::seed_from_u64(7100 + trial);
            let ch = model.realize(&mut rng);
            let reused = uplink_frame_iterative_into(&cfg(), &ch, 16.0, 2, &mut rng, &mut ws);
            assert_eq!(reused.client_ok, fresh.client_ok, "trial {trial}");
            assert_eq!(reused.stats, fresh.stats, "trial {trial}");
            assert_eq!(reused.detections, fresh.detections, "trial {trial}");
        }
    }

    #[test]
    fn iterations_help_at_marginal_snr() {
        let model = RayleighChannel::new(4, 4);
        let trials = 10;
        let snr = 14.0;
        let mut one_ok = 0usize;
        let mut three_ok = 0usize;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(7000 + t);
            let ch = model.realize(&mut rng);
            one_ok += uplink_frame_iterative(&cfg(), &ch, snr, 1, &mut rng)
                .client_ok
                .iter()
                .filter(|&&ok| ok)
                .count();
            let mut rng = StdRng::seed_from_u64(7000 + t);
            let ch = model.realize(&mut rng);
            three_ok += uplink_frame_iterative(&cfg(), &ch, snr, 3, &mut rng)
                .client_ok
                .iter()
                .filter(|&&ok| ok)
                .count();
        }
        assert!(
            three_ok >= one_ok,
            "turbo iterations must not hurt: 1-iter {one_ok}, 3-iter {three_ok}"
        );
    }
}
