//! Iterative (turbo) MMSE-PIC receiver — the paper's §7 endgame.
//!
//! "While Geosphere increases throughput, iterative soft receiver
//! processing is required to reach MIMO capacity." This module implements
//! the canonical iterative architecture: soft parallel interference
//! cancellation + per-stream MMSE filtering produces per-bit LLRs; a
//! max-log BCJR pass per client returns coded-bit extrinsics; those become
//! symbol priors for the next detection round.
//!
//! Iteration 0 (no priors) reduces to plain soft MMSE detection, so any
//! improvement across iterations is pure turbo gain.

use crate::config::PhyConfig;
use crate::txrx::{transmit_frame, UplinkOutcome};
use geosphere_core::DetectorStats;
use gs_channel::{sample_cn, MimoChannel};
use gs_coding::{bcjr, depuncture_soft, interleave::Interleaver, scramble::Scrambler};
use gs_linalg::{invert, Complex, Matrix};
use gs_modulation::{BitTable, Constellation, GridPoint};
use rand::Rng;

/// Per-symbol prior statistics derived from coded-bit LLRs.
struct SymbolPrior {
    mean: Complex,
    variance: f64,
}

/// Soft symbol statistics from per-bit priors (`Q` LLRs, positive = 0).
fn symbol_stats(c: Constellation, table: &BitTable, llrs: &[f64]) -> SymbolPrior {
    let q = c.bits_per_symbol();
    debug_assert_eq!(llrs.len(), q);
    // P(bit k = 1) = sigmoid(−L).
    let p1: Vec<f64> = llrs.iter().map(|&l| 1.0 / (1.0 + l.exp())).collect();
    let mut mean = Complex::ZERO;
    let mut power = 0.0;
    for p in c.points() {
        let mut prob = 1.0;
        let packed = table.packed(p);
        for (k, &p1k) in p1.iter().enumerate() {
            let bit = (packed >> (q - 1 - k)) & 1 == 1;
            prob *= if bit { p1k } else { 1.0 - p1k };
        }
        mean += p.to_complex() * prob;
        power += p.to_complex().norm_sqr() * prob;
    }
    SymbolPrior { mean, variance: (power - mean.norm_sqr()).max(0.0) }
}

/// Per-bit max-log LLRs from a scalar Gaussian observation `z ≈ μ·s + η`,
/// `η ~ CN(0, v)`, `s` on the grid.
fn scalar_llrs(
    c: Constellation,
    table: &BitTable,
    z: Complex,
    mu: f64,
    v: f64,
    out: &mut Vec<f64>,
) {
    let q = c.bits_per_symbol();
    let mut best0 = vec![f64::INFINITY; q];
    let mut best1 = vec![f64::INFINITY; q];
    for p in c.points() {
        let d = (z - p.to_complex() * mu).norm_sqr() / v.max(1e-12);
        let packed = table.packed(p);
        for k in 0..q {
            let bit = (packed >> (q - 1 - k)) & 1 == 1;
            if bit {
                if d < best1[k] {
                    best1[k] = d;
                }
            } else if d < best0[k] {
                best0[k] = d;
            }
        }
    }
    for k in 0..q {
        out.push((best1[k] - best0[k]).clamp(-30.0, 30.0));
    }
}

/// Runs one uplink frame through the iterative MMSE-PIC receiver.
///
/// `iterations = 1` is plain soft MMSE detection + SISO decoding;
/// each further iteration feeds decoder extrinsics back as symbol priors.
pub fn uplink_frame_iterative<R: Rng + ?Sized>(
    cfg: &PhyConfig,
    channel: &MimoChannel,
    snr_db: f64,
    iterations: usize,
    rng: &mut R,
) -> UplinkOutcome {
    assert!(iterations >= 1);
    let nc = channel.num_tx();
    let na = channel.num_rx();
    let c = cfg.constellation;
    let q = c.bits_per_symbol();
    let table = BitTable::new(c);
    let es = c.energy();
    let sigma2 = gs_channel::noise_variance_for_snr_db(snr_db);

    // Transmit.
    let frames: Vec<_> = (0..nc)
        .map(|_| {
            let payload: Vec<bool> = (0..cfg.payload_bits).map(|_| rng.gen_bool(0.5)).collect();
            transmit_frame(cfg, &payload)
        })
        .collect();
    let n_sym = frames[0].symbols.len();
    let grid_channels: Vec<Matrix> = channel.iter().map(|m| m.scale(c.scale())).collect();

    // Air: one received vector per (OFDM symbol, subcarrier).
    let mut received: Vec<Vec<Vec<Complex>>> = Vec::with_capacity(n_sym);
    for t in 0..n_sym {
        let mut row = Vec::with_capacity(cfg.n_subcarriers);
        for k in 0..cfg.n_subcarriers {
            let h = &grid_channels[k % grid_channels.len()];
            let s: Vec<GridPoint> = (0..nc).map(|cl| frames[cl].symbols[t][k]).collect();
            let mut y = geosphere_core::apply_channel(h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(rng, sigma2);
            }
            row.push(y);
        }
        received.push(row);
    }

    // Iterate. priors[cl] = coded-bit LLRs in *transmitted* (interleaved)
    // order; zeros initially.
    let il = Interleaver::new(cfg.n_cbps(), q);
    let bits_per_frame = n_sym * cfg.n_cbps();
    let mut priors: Vec<Vec<f64>> = vec![vec![0.0; bits_per_frame]; nc];
    let mut stats = DetectorStats::default();
    let mut detections = 0u64;
    let mut client_ok = vec![false; nc];

    // Per-resource-element scratch, hoisted so the detection inner loop
    // reuses buffers instead of allocating per (symbol, subcarrier, stream)
    // — the same memory discipline as the sphere path's SearchWorkspace.
    let mut sp: Vec<SymbolPrior> = Vec::with_capacity(nc);
    let mut cov = Matrix::default();
    let mut cov_cl = Matrix::default();
    let mut yc: Vec<Complex> = Vec::with_capacity(na);
    let mut h_cl: Vec<Complex> = Vec::with_capacity(na);

    for _iter in 0..iterations {
        // Detection pass: soft-PIC MMSE per (t, k), producing posterior
        // channel LLRs per bit in transmitted order.
        let mut channel_llrs: Vec<Vec<f64>> = vec![Vec::with_capacity(bits_per_frame); nc];
        for t in 0..n_sym {
            for k in 0..cfg.n_subcarriers {
                let h = &grid_channels[k % grid_channels.len()];
                let y = &received[t][k];
                detections += 1;
                // Symbol priors for every stream at this resource element.
                let base = (t * cfg.n_subcarriers + k) * q;
                sp.clear();
                sp.extend((0..nc).map(|cl| symbol_stats(c, &table, &priors[cl][base..base + q])));
                // Covariance of the residual: H V H* + σ² I, with V the
                // per-stream residual variances (grid domain folded into h).
                cov.reset_zeros(na, na);
                for r1 in 0..na {
                    for r2 in 0..na {
                        let mut acc = Complex::ZERO;
                        for cl in 0..nc {
                            acc += h[(r1, cl)] * h[(r2, cl)].conj() * sp[cl].variance;
                        }
                        if r1 == r2 {
                            acc += Complex::real(sigma2);
                        }
                        cov[(r1, r2)] = acc;
                        stats.complex_mults += nc as u64;
                    }
                }
                for cl in 0..nc {
                    // Cancel every other stream's soft mean.
                    yc.clear();
                    yc.extend_from_slice(y);
                    for other in 0..nc {
                        if other == cl {
                            continue;
                        }
                        for (r, v) in yc.iter_mut().enumerate() {
                            *v -= h[(r, other)] * sp[other].mean;
                        }
                    }
                    // Per-stream MMSE filter: w = (cov + h_cl(Es−v_cl)h_cl*)⁻¹h_cl
                    // — adjust cov for this stream's full symbol energy.
                    cov_cl.copy_from(&cov);
                    let delta = es - sp[cl].variance;
                    for r1 in 0..na {
                        for r2 in 0..na {
                            cov_cl[(r1, r2)] += h[(r1, cl)] * h[(r2, cl)].conj() * delta;
                        }
                    }
                    h_cl.clear();
                    h_cl.extend((0..na).map(|r| h[(r, cl)]));
                    let w = match invert(&cov_cl) {
                        Ok(inv) => inv.mul_vec(&h_cl),
                        Err(_) => h_cl.clone(),
                    };
                    stats.complex_mults += (na * na) as u64;
                    // z = w* yc ; effective gain mu = w* h_cl (real by
                    // construction up to numerical noise).
                    let z: Complex = w.iter().zip(&yc).map(|(&wr, &yr)| wr.conj() * yr).sum();
                    let mu: Complex = w.iter().zip(&h_cl).map(|(&wr, &hr)| wr.conj() * hr).sum();
                    let mu = mu.re.max(1e-12);
                    // Exact post-filter disturbance power: w*·M·w with
                    // M = cov_cl − Es·h_cl h_cl* (everything except the
                    // desired stream: residual interference + thermal).
                    let mut v_eff = 0.0;
                    for r1 in 0..na {
                        for r2 in 0..na {
                            let m = cov_cl[(r1, r2)] - h_cl[r1] * h_cl[r2].conj() * es;
                            v_eff += (w[r1].conj() * m * w[r2]).re;
                        }
                    }
                    let v_eff = v_eff.max(1e-12);
                    stats.complex_mults += (na * na) as u64;
                    scalar_llrs(c, &table, z, mu, v_eff, &mut channel_llrs[cl]);
                    stats.ped_calcs += c.size() as u64;
                }
            }
        }

        // Decoding pass per client: deinterleave, depuncture, SISO decode,
        // re-interleave extrinsics into priors for the next round.
        for cl in 0..nc {
            let deint = il.deinterleave_values_stream(&channel_llrs[cl]);
            let mother_len = 2 * cfg.total_info_bits();
            let soft = depuncture_soft(&deint, cfg.code_rate, mother_len);
            let siso = bcjr::siso_decode(&soft);

            // CRC check on this iteration's hard decisions.
            let mut info = siso.info_bits.clone();
            Scrambler::default_seed().apply_in_place(&mut info);
            info.truncate(cfg.payload_bits + 32);
            if let Some(payload) = gs_coding::check_crc(&info) {
                if payload == frames[cl].payload {
                    client_ok[cl] = true;
                }
            }

            // Extrinsics (mother domain) → puncture → interleave → priors.
            let pat = cfg.code_rate.keep_pattern();
            let kept: Vec<f64> = siso
                .coded_extrinsic
                .iter()
                .enumerate()
                .filter(|(k, _)| pat[k % pat.len()])
                .map(|(_, &l)| l)
                .collect();
            // Interleave positionally: transmitted[j] = kept[k] where
            // j = map(k); realize via the value interleaver's inverse twice.
            let mut tx_order = vec![0.0f64; kept.len()];
            // deinterleave_values maps tx→logical; to go logical→tx, place
            // each logical value where deinterleave would fetch it from.
            for chunk_start in (0..kept.len()).step_by(cfg.n_cbps()) {
                let chunk = &kept[chunk_start..chunk_start + cfg.n_cbps()];
                // Build inverse: for logical position k, tx position is
                // il.map; emulate with a probe-free approach: interleave a
                // tagged chunk using the bool path per bit is O(n²); instead
                // use deinterleave on identity indices once.
                let idx: Vec<usize> = (0..cfg.n_cbps()).collect();
                let fetched = il
                    .deinterleave_values_stream(&idx.iter().map(|&v| v as f64).collect::<Vec<_>>());
                // fetched[k] = tx index feeding logical k ⇒ tx[fetched[k]] = chunk[k].
                for (k, &src) in fetched.iter().enumerate() {
                    tx_order[chunk_start + src as usize] = chunk[k];
                }
            }
            priors[cl] = tx_order;
            if std::env::var("GS_TURBO_DEBUG").is_ok() {
                let maxp = priors[cl].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
                let nz = priors[cl].iter().filter(|&&v| v.abs() > 1e-9).count();
                eprintln!(
                    "iter {_iter} client {cl}: max|prior| {maxp:.2}, nonzero {nz}/{}",
                    priors[cl].len()
                );
            }
        }
    }

    UplinkOutcome { client_ok, stats, detections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::{ChannelModel, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> PhyConfig {
        PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) }
    }

    #[test]
    fn symbol_stats_flat_prior_is_zero_mean_full_variance() {
        let c = Constellation::Qam16;
        let table = BitTable::new(c);
        let sp = symbol_stats(c, &table, &[0.0; 4]);
        assert!(sp.mean.abs() < 1e-12);
        assert!((sp.variance - c.energy()).abs() < 1e-9);
    }

    #[test]
    fn symbol_stats_certain_prior_collapses() {
        let c = Constellation::Qam16;
        let table = BitTable::new(c);
        // Strong priors for a specific point's bits.
        let p = GridPoint { i: 3, q: -1 };
        let bits = gs_modulation::unmap_point(c, p);
        let llrs: Vec<f64> = bits.iter().map(|&b| if b { -30.0 } else { 30.0 }).collect();
        let sp = symbol_stats(c, &table, &llrs);
        assert!((sp.mean - p.to_complex()).abs() < 1e-6);
        assert!(sp.variance < 1e-6);
    }

    #[test]
    fn scalar_llr_signs() {
        let c = Constellation::Qpsk;
        let table = BitTable::new(c);
        let mut out = Vec::new();
        scalar_llrs(c, &table, Complex::new(1.0, -1.0), 1.0, 0.1, &mut out);
        let bits = gs_modulation::unmap_point(c, GridPoint { i: 1, q: -1 });
        for (l, b) in out.iter().zip(&bits) {
            assert_eq!(*l < 0.0, *b);
        }
    }

    #[test]
    fn single_iteration_works_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(971);
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let out = uplink_frame_iterative(&cfg(), &ch, 30.0, 1, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn iterations_help_at_marginal_snr() {
        let model = RayleighChannel::new(4, 4);
        let trials = 10;
        let snr = 14.0;
        let mut one_ok = 0usize;
        let mut three_ok = 0usize;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(7000 + t);
            let ch = model.realize(&mut rng);
            one_ok += uplink_frame_iterative(&cfg(), &ch, snr, 1, &mut rng)
                .client_ok
                .iter()
                .filter(|&&ok| ok)
                .count();
            let mut rng = StdRng::seed_from_u64(7000 + t);
            let ch = model.realize(&mut rng);
            three_ok += uplink_frame_iterative(&cfg(), &ch, snr, 3, &mut rng)
                .client_ok
                .iter()
                .filter(|&&ok| ok)
                .count();
        }
        assert!(
            three_ok >= one_ok,
            "turbo iterations must not hurt: 1-iter {one_ok}, 3-iter {three_ok}"
        );
    }
}
