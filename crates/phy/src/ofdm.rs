//! Time-domain OFDM modulation.
//!
//! The evaluation pipeline works per subcarrier in the frequency domain
//! (where MIMO detection happens), but the workspace also carries a real
//! OFDM modulator — IFFT, cyclic prefix, serialization, and the inverse —
//! for end-to-end realism in examples and for verifying that the
//! frequency-domain shortcut is exact over a time-invariant channel.

use crate::config::{CYCLIC_PREFIX, DATA_SUBCARRIERS, FFT_SIZE};
use gs_linalg::{fft, ifft, Complex};

/// Subcarrier indices (within the 64-bin FFT) that carry data, following
/// the 802.11a layout: bins ±1..±26 minus the four pilot bins ±7, ±21.
pub fn data_bins() -> Vec<usize> {
    let mut bins = Vec::with_capacity(DATA_SUBCARRIERS);
    for k in 1..=26usize {
        if k == 7 || k == 21 {
            continue; // pilots
        }
        bins.push(k); // positive frequencies
    }
    for k in 1..=26usize {
        if k == 7 || k == 21 {
            continue;
        }
        bins.push(FFT_SIZE - k); // negative frequencies
    }
    bins.sort_unstable();
    bins
}

/// Modulates one OFDM symbol: places `DATA_SUBCARRIERS` frequency-domain
/// samples on the data bins, IFFTs, and prepends the cyclic prefix.
///
/// # Panics
/// Panics when `freq.len() != DATA_SUBCARRIERS`.
pub fn modulate_symbol(freq: &[Complex]) -> Vec<Complex> {
    assert_eq!(freq.len(), DATA_SUBCARRIERS);
    let mut bins = vec![Complex::ZERO; FFT_SIZE];
    for (v, &b) in freq.iter().zip(data_bins().iter()) {
        bins[b] = *v;
    }
    ifft(&mut bins);
    let mut out = Vec::with_capacity(FFT_SIZE + CYCLIC_PREFIX);
    out.extend_from_slice(&bins[FFT_SIZE - CYCLIC_PREFIX..]);
    out.extend_from_slice(&bins);
    out
}

/// Demodulates one OFDM symbol: strips the cyclic prefix, FFTs, and reads
/// the data bins.
///
/// # Panics
/// Panics when the sample count is wrong.
pub fn demodulate_symbol(time: &[Complex]) -> Vec<Complex> {
    assert_eq!(time.len(), FFT_SIZE + CYCLIC_PREFIX);
    let mut bins = time[CYCLIC_PREFIX..].to_vec();
    fft(&mut bins);
    data_bins().iter().map(|&b| bins[b]).collect()
}

/// Modulates a stream of frequency-domain OFDM symbols into a contiguous
/// sample stream.
pub fn modulate_stream(symbols: &[Vec<Complex>]) -> Vec<Complex> {
    symbols.iter().flat_map(|s| modulate_symbol(s)).collect()
}

/// Splits a sample stream back into per-symbol frequency-domain vectors.
pub fn demodulate_stream(samples: &[Complex]) -> Vec<Vec<Complex>> {
    let sym_len = FFT_SIZE + CYCLIC_PREFIX;
    assert_eq!(samples.len() % sym_len, 0, "stream not a whole number of OFDM symbols");
    samples.chunks(sym_len).map(demodulate_symbol).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_bin_layout() {
        let bins = data_bins();
        assert_eq!(bins.len(), DATA_SUBCARRIERS);
        assert!(!bins.contains(&0), "DC bin must be empty");
        assert!(!bins.contains(&7) && !bins.contains(&21), "pilot bins excluded");
        assert!(!bins.contains(&(64 - 7)) && !bins.contains(&(64 - 21)));
        let mut uniq = bins.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), bins.len());
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let freq: Vec<Complex> = (0..DATA_SUBCARRIERS)
            .map(|k| Complex::new(k as f64 - 24.0, (k as f64 * 0.3).sin()))
            .collect();
        let time = modulate_symbol(&freq);
        assert_eq!(time.len(), FFT_SIZE + CYCLIC_PREFIX);
        let back = demodulate_symbol(&time);
        for (a, b) in freq.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let freq = vec![Complex::ONE; DATA_SUBCARRIERS];
        let time = modulate_symbol(&freq);
        for k in 0..CYCLIC_PREFIX {
            assert!((time[k] - time[FFT_SIZE + k]).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_roundtrip() {
        let symbols: Vec<Vec<Complex>> = (0..5)
            .map(|t| {
                (0..DATA_SUBCARRIERS)
                    .map(|k| Complex::new((t * k) as f64 * 0.01, (t + k) as f64 * 0.02))
                    .collect()
            })
            .collect();
        let stream = modulate_stream(&symbols);
        let back = demodulate_stream(&stream);
        assert_eq!(back.len(), 5);
        for (orig, rec) in symbols.iter().zip(&back) {
            for (a, b) in orig.iter().zip(rec) {
                assert!((*a - *b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn delay_within_cp_preserved_per_subcarrier() {
        // A one-sample delay within the CP becomes a pure per-subcarrier
        // phase rotation — the property that makes per-subcarrier MIMO
        // detection exact.
        let freq: Vec<Complex> =
            (0..DATA_SUBCARRIERS).map(|k| Complex::cis(k as f64 * 0.4)).collect();
        let time = modulate_symbol(&freq);
        // Build a delayed circular version (time-invariant single tap at
        // delay 1 acting on the CP-extended signal).
        let mut delayed = vec![Complex::ZERO; time.len()];
        delayed[1..].copy_from_slice(&time[..time.len() - 1]);
        let rx = demodulate_symbol(&delayed);
        for (k, (a, b)) in freq.iter().zip(&rx).enumerate() {
            let expect = *a * Complex::cis(-std::f64::consts::TAU * data_bins()[k] as f64 / 64.0);
            assert!((expect - *b).abs() < 1e-9, "subcarrier {k}");
        }
    }
}
