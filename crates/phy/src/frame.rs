//! Frame-level reusable workspace: the allocation-free receive loop.
//!
//! PR 2 made the per-symbol detection hot path zero-alloc behind
//! `SearchWorkspace`; this module extends the same ownership discipline one
//! layer up, to whole frames. [`FrameWorkspace`] owns every buffer an
//! uplink frame exchange touches — the transmit-chain scratch, the planned
//! per-client symbol grids, the pooled [`DetectionJob`] `y` buffers, the
//! detection outputs, the per-client LLR streams of the soft path, and the
//! receive-chain (deinterleave/depuncture/Viterbi) scratch — plus the
//! persistent [`DetectionPool`] for multi-worker decoding.
//!
//! ## Ownership model
//!
//! **One `FrameWorkspace` per receive loop, one
//! [`SearchWorkspace`](geosphere_core::SearchWorkspace) per worker.** A
//! long-lived receiver holds one `FrameWorkspace` across frames and drives
//! [`decode_frame_batched_into`](crate::txrx::decode_frame_batched_into)
//! (hard path) or
//! [`uplink_frame_soft_into`](crate::soft_rx::uplink_frame_soft_into)
//! (soft path): after one warmup frame of a given shape, a frame performs
//! **zero heap allocations** end to end — planning, detection (at any
//! worker count: pool threads recycle their own search state and output
//! buffers), and payload recovery. `tests/alloc_regression.rs` enforces
//! this with a counting global allocator; `tests/frame_workspace_reuse.rs`
//! proves reuse is bit-identical to fresh-workspace decoding, shrinking
//! and growing frame shapes included.
//!
//! Buffers only ever grow: a smaller frame reuses the prefix of a larger
//! frame's buffers, so alternating shapes stay allocation-free once the
//! largest has been seen.

use crate::config::PhyConfig;
use crate::iterative::IterScratch;
use crate::txrx::UplinkOutcome;
use geosphere_core::{
    Detection, DetectionJob, DetectionPool, DetectorStats, DetectorTier, DetectorWorkspace,
    MimoDetector, SoftDetection, SoftWorkspace,
};
use gs_channel::MimoChannel;
use gs_coding::{CodedBit, ViterbiWorkspace};
use gs_linalg::{Complex, Matrix};
use gs_modulation::GridPoint;
use rand::Rng;
use std::any::Any;
use std::sync::Arc;

/// Transmit-chain scratch shared by all clients of a frame (each client's
/// chain runs start-to-finish before the next client's).
#[derive(Default)]
pub(crate) struct TxScratch {
    /// Payload + CRC + pad (scrambled in place).
    pub(crate) info: Vec<bool>,
    /// Mother-code output.
    pub(crate) mother: Vec<bool>,
    /// Punctured stream.
    pub(crate) coded: Vec<bool>,
    /// Interleaved stream.
    pub(crate) interleaved: Vec<bool>,
}

/// Receive-chain scratch shared by all clients of a frame.
#[derive(Default)]
pub(crate) struct RxScratch {
    /// Hard demapped bits (transmitted order).
    pub(crate) bits: Vec<bool>,
    /// Deinterleaved hard bits.
    pub(crate) deint: Vec<bool>,
    /// Depunctured mother stream.
    pub(crate) mother_cb: Vec<CodedBit>,
    /// Deinterleaved LLRs (soft path).
    pub(crate) llr_deint: Vec<f64>,
    /// Depunctured soft mother stream.
    pub(crate) mother_soft: Vec<f64>,
    /// Decoded information bits (truncated to payload + CRC).
    pub(crate) info: Vec<bool>,
    /// Viterbi trellis scratch (hard and soft paths).
    pub(crate) vit: ViterbiWorkspace,
    /// Flat client-major mother streams for the lockstep multi-stream
    /// Viterbi pass (client `cl` at `cl·mother_len..`).
    pub(crate) mother_multi: Vec<CodedBit>,
    /// Flat client-major decoded info bits from the lockstep pass.
    pub(crate) info_multi: Vec<bool>,
}

/// The detector identity installed into the worker pool: the caller's
/// concrete detector value (for change detection) plus the type-erased
/// `Arc` the pool workers hold.
pub(crate) struct PoolDetector {
    src: Box<dyn Any + Send + Sync>,
    arc: Arc<dyn MimoDetector>,
}

/// Reusable whole-frame state for the uplink receive loop. See the module
/// docs for the ownership model; create with [`FrameWorkspace::new`] and
/// pass to the `_into` frame entry points in [`crate::txrx`],
/// [`crate::soft_rx`], [`crate::iterative`], and [`mod@crate::measure`].
#[derive(Default)]
pub struct FrameWorkspace {
    // --- frame plan (filled by `plan_uplink_frame_into`) ---
    /// Per-client payload bits.
    pub(crate) payloads: Vec<Vec<bool>>,
    /// Per-client planned grid symbols, flattened `[t * n_subcarriers + k]`.
    pub(crate) symbols: Vec<Vec<GridPoint>>,
    pub(crate) tx: TxScratch,
    /// Grid-domain air channels (constellation scale folded in).
    pub(crate) grid_channels: Vec<Matrix>,
    /// The detector's channel view (genie or CSI), same scaling.
    pub(crate) rx_channels: Vec<Matrix>,
    /// Valid prefix lengths of the two channel tables (the buffers only
    /// grow; stale entries beyond these lengths are ignored).
    pub(crate) n_grid_channels: usize,
    pub(crate) n_rx_channels: usize,
    /// Pooled detection jobs; entry `y` buffers are refilled in place.
    pub(crate) jobs: Vec<DetectionJob>,
    pub(crate) n_jobs: usize,
    pub(crate) n_sym: usize,
    pub(crate) n_clients: usize,
    /// Per-job stacked symbol scratch.
    pub(crate) s_buf: Vec<GridPoint>,
    /// Per-resource-element receive scratch (soft/iterative paths).
    pub(crate) y_buf: Vec<Complex>,

    // --- detection ---
    /// Detector workspace for the single-worker inline path.
    pub(crate) det_ws: DetectorWorkspace,
    /// Detection outputs of the single-worker inline path (recycled).
    pub(crate) det_out: Vec<Detection>,
    /// Persistent multi-worker pool, built on first multi-worker decode.
    pub(crate) pool: Option<DetectionPool>,
    /// The detector currently installed for the pool.
    pub(crate) pool_detector: Option<PoolDetector>,

    // --- soft path ---
    pub(crate) soft_ws: SoftWorkspace,
    pub(crate) soft_out: SoftDetection,
    /// Per-client LLR streams (frame order).
    pub(crate) llrs: Vec<Vec<f64>>,

    // --- iterative (turbo) path ---
    pub(crate) iter: IterScratch,

    // --- assembly ---
    /// Per-client detected symbols, flattened like `symbols`.
    pub(crate) detected: Vec<Vec<GridPoint>>,
    pub(crate) rx: RxScratch,
    /// Diagnostic/bench knob: decode each client's Viterbi trellis
    /// separately instead of through the lockstep multi-stream pass.
    /// Default `false` (batched). Outputs are bit-identical either way —
    /// this exists so `bench_gate` can time the single-stream path.
    pub(crate) per_client_viterbi: bool,
    /// The control-plane tier stamp copied into [`UplinkOutcome::tier`] by
    /// `finish_uplink`. Sticky until set again ([`FrameWorkspace::set_detector_tier`]);
    /// defaults to [`DetectorTier::Sphere`].
    pub(crate) tier: DetectorTier,
    /// The frame outcome, rebuilt in place every frame.
    pub(crate) out: UplinkOutcome,
}

impl FrameWorkspace {
    /// Creates an empty workspace; every buffer grows on first use and is
    /// reused forever after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The outcome of the last frame decoded through this workspace.
    pub fn outcome(&self) -> &UplinkOutcome {
        &self.out
    }

    /// Stamps the detector tier a control plane chose for the frame being
    /// staged; [`FrameWorkspace::finish_uplink`] copies it into
    /// [`UplinkOutcome::tier`]. Purely a label — it does not change which
    /// detector runs (the caller dispatches detection) or any decoded bit.
    /// Sticky across frames until set again; entry points that never stamp
    /// a tier report the default, [`DetectorTier::Sphere`].
    pub fn set_detector_tier(&mut self, tier: DetectorTier) {
        self.tier = tier;
    }

    /// The tier stamp the next [`FrameWorkspace::finish_uplink`] will
    /// report.
    pub fn detector_tier(&self) -> DetectorTier {
        self.tier
    }

    /// Forces per-client (single-stream) Viterbi decoding instead of the
    /// default lockstep multi-stream pass. Bit-identical output either
    /// way; a measurement knob for the bench harness, not a tuning one.
    pub fn set_per_client_viterbi(&mut self, on: bool) {
        self.per_client_viterbi = on;
    }

    /// The `Arc` handle for `detector`, rebuilding it only when the
    /// detector value (or type) changed since the pool last saw it — a
    /// refcount bump per frame in steady state, never an allocation.
    pub(crate) fn pool_detector_for<D>(&mut self, detector: &D) -> Arc<dyn MimoDetector>
    where
        D: MimoDetector + Clone + PartialEq + 'static,
    {
        let fresh = matches!(
            &self.pool_detector,
            Some(pd) if pd.src.downcast_ref::<D>() == Some(detector)
        );
        if !fresh {
            let arc: Arc<dyn MimoDetector> = Arc::new(detector.clone());
            self.pool_detector =
                Some(PoolDetector { src: Box::new(detector.clone()), arc: Arc::clone(&arc) });
        }
        Arc::clone(&self.pool_detector.as_ref().expect("detector just installed").arc)
    }

    /// The persistent pool sized to `workers`, (re)built only when the
    /// worker count changes.
    pub(crate) fn pool_with_workers(&mut self, workers: usize) -> &mut DetectionPool {
        let workers = workers.max(1);
        if !matches!(&self.pool, Some(p) if p.workers() == workers) {
            self.pool = Some(DetectionPool::new(workers));
        }
        self.pool.as_mut().expect("pool just built")
    }
}

/// The **staged** frame API: the three pipeline stages of
/// [`decode_frame_batched_into`](crate::txrx::decode_frame_batched_into),
/// exposed individually so an external scheduler (the `gs-runtime`
/// streaming engine) can run *plan*, *detect*, and *recover* on different
/// threads and overlap them across frames.
///
/// Contract (all stages allocation-free once the workspace has warmed up
/// to the frame shape, and bit-identical to the one-call entry points):
///
/// 1. [`FrameWorkspace::plan_uplink`] draws the frame's randomness and
///    fills the pooled detection jobs;
/// 2. the caller detects [`FrameWorkspace::planned_jobs`] against
///    [`FrameWorkspace::planned_channels`] however it likes (inline,
///    pooled, sharded) — detection is a pure per-job function;
/// 3. [`FrameWorkspace::begin_detection_assembly`], one
///    [`FrameWorkspace::absorb_detection`] per job index (any order, each
///    exactly once), then [`FrameWorkspace::finish_uplink`] runs the
///    receive chains and leaves the result in
///    [`FrameWorkspace::outcome`].
impl FrameWorkspace {
    /// Stage 1 — plans one uplink frame into this workspace: draws every
    /// client payload and the per-resource-element noise from `rng` (the
    /// draw order all receive paths share), runs the transmit chains, and
    /// packages the detection jobs. Genie CSI; `channel` must have one
    /// subcarrier (flat) or exactly `cfg.n_subcarriers`.
    pub fn plan_uplink<R: Rng + ?Sized>(
        &mut self,
        cfg: &PhyConfig,
        channel: &MimoChannel,
        snr_db: f64,
        rng: &mut R,
    ) {
        crate::txrx::plan_uplink_frame_into(cfg, channel, None, snr_db, rng, self);
    }

    /// The detection jobs of the last planned frame (one per OFDM symbol ×
    /// subcarrier; `channel` fields index [`FrameWorkspace::planned_channels`]).
    pub fn planned_jobs(&self) -> &[DetectionJob] {
        &self.jobs[..self.n_jobs]
    }

    /// The channel table of the last planned frame (the detector's view,
    /// constellation scale folded in).
    pub fn planned_channels(&self) -> &[Matrix] {
        &self.rx_channels[..self.n_rx_channels]
    }

    /// Stage 3 prologue — sizes the per-client detected-symbol buffers for
    /// the planned frame. Call once before the
    /// [`FrameWorkspace::absorb_detection`] sweep.
    pub fn begin_detection_assembly(&mut self) {
        crate::txrx::begin_assemble(self);
    }

    /// Stage 3 — scatters the detection for job `idx` into the per-client
    /// symbol buffers and accumulates its operation counts into `stats`.
    /// Every job index of the planned frame must be absorbed exactly once,
    /// in any order (results are index-scattered, so internal reordering
    /// cannot change the outcome).
    pub fn absorb_detection(&mut self, stats: &mut DetectorStats, idx: usize, det: &Detection) {
        crate::txrx::absorb_detection(&mut self.detected, stats, idx, det);
    }

    /// Stage 3 epilogue — inverts the per-client receive chains over the
    /// absorbed detections and writes the frame outcome (also returned by
    /// [`FrameWorkspace::outcome`] until the next frame).
    pub fn finish_uplink(&mut self, cfg: &PhyConfig, stats: DetectorStats) -> &UplinkOutcome {
        crate::txrx::finish_outcome(cfg, self, stats)
    }
}
