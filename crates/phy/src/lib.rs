//! # gs-phy
//!
//! The OFDM MIMO physical layer of the Geosphere workspace (paper §4):
//! 802.11-style framing over 48 data subcarriers, the full
//! scramble→code→interleave→map transmit chain, a per-subcarrier MIMO
//! detection receive chain accepting any [`geosphere_core::MimoDetector`],
//! a time-domain OFDM modulator, and FER/throughput measurement drivers.

#![forbid(unsafe_code)]
// Trellis/detector inner loops index several arrays by the same state or
// stream variable; iterator rewrites obscure the recurrences.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod chanest;
pub mod config;
pub mod frame;
pub mod iterative;
pub mod measure;
pub mod ofdm;
pub mod soft_rx;
pub mod txrx;

pub use chanest::{estimate_channel, estimation_mse, ChannelEstimate};
pub use config::{PhyConfig, DATA_SUBCARRIERS, OFDM_SYMBOL_SECONDS};
pub use frame::FrameWorkspace;
pub use iterative::{uplink_frame_iterative, uplink_frame_iterative_into};
pub use measure::{
    best_rate_measurement, measure, measure_batched, measure_batched_in, measure_batched_into,
    measure_in, snr_for_target_fer, snr_for_target_fer_batched, Measurement,
};
pub use soft_rx::{receive_frame_soft, uplink_frame_soft, uplink_frame_soft_into};
pub use txrx::{
    decode_frame_batched, decode_frame_batched_into, receive_frame, transmit_frame, uplink_frame,
    uplink_frame_with_csi, uplink_frame_with_csi_into, TxFrame, UplinkOutcome,
};
