//! Frame-error-rate and throughput measurement.
//!
//! Runs repeated uplink frames over fresh channel realizations (the
//! paper's per-frame i.i.d. sampling, §5.3.2 footnote: coherence times of
//! "driving speeds and slower") and aggregates FER, net throughput, and
//! per-subcarrier detector complexity.

use crate::config::PhyConfig;
use crate::frame::FrameWorkspace;
use crate::txrx::{
    decode_frame_batched_into, decode_frame_scoped_into, uplink_frame_with_csi_into,
};
use geosphere_core::{AverageStats, DetectorStats, MimoDetector};
use gs_channel::ChannelModel;
use rand::Rng;

/// Aggregated measurement over many frames.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Frames attempted per client.
    pub frames: usize,
    /// Number of clients.
    pub clients: usize,
    /// Per-client frame error rate.
    pub client_fer: Vec<f64>,
    /// Overall frame error rate (all clients pooled).
    pub fer: f64,
    /// Net uplink throughput in Mbps: payload bits delivered across all
    /// clients divided by total airtime.
    pub throughput_mbps: f64,
    /// Detector complexity averaged per subcarrier detection.
    pub per_subcarrier: AverageStats,
}

/// Measures FER/throughput/complexity for one (channel model, detector,
/// SNR, PHY config) operating point.
pub fn measure<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
) -> Measurement
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    let mut ws = FrameWorkspace::new();
    measure_impl(cfg, model, detector, snr_db, frames, rng, None, &mut ws)
}

/// [`measure`] recycling a caller-held [`FrameWorkspace`], so long
/// measurement sweeps (SNR grids, constellation scans, per-group loops)
/// stop re-warming plan/receive buffers on every point. Bit-identical to
/// [`measure`] for the same `rng` state.
pub fn measure_in<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
    ws: &mut FrameWorkspace,
) -> Measurement
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    measure_impl(cfg, model, detector, snr_db, frames, rng, None, ws)
}

/// [`measure`] with the frame decode fanned out across `workers` threads
/// (`0` = machine parallelism) through
/// [`decode_frame_batched`](crate::txrx::decode_frame_batched).
///
/// Results are bit-identical to [`measure`] for the same `rng` state —
/// the batched decode path is deterministic — so experiment outputs don't
/// depend on the worker count, only wall-clock does.
pub fn measure_batched<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
    workers: usize,
) -> Measurement
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    let mut ws = FrameWorkspace::new();
    measure_impl(cfg, model, detector, snr_db, frames, rng, Some(workers), &mut ws)
}

/// [`measure_batched`] recycling a caller-held [`FrameWorkspace`] — the
/// sweep-friendly form for detectors only known as `&dyn MimoDetector`
/// (multi-worker frames fan out through scoped threads; callers that can
/// name the detector type should prefer [`measure_batched_into`] and its
/// persistent pool). Bit-identical to [`measure_batched`] for the same
/// `rng` state.
#[allow(clippy::too_many_arguments)]
pub fn measure_batched_in<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
    workers: usize,
    ws: &mut FrameWorkspace,
) -> Measurement
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    measure_impl(cfg, model, detector, snr_db, frames, rng, Some(workers), ws)
}

/// [`measure_batched`] recycling a caller-held [`FrameWorkspace`] through
/// [`decode_frame_batched_into`]: after the first frame, each further
/// frame's *decode* (plan, detection via the persistent worker pool,
/// receive chain) performs zero heap allocations — only the per-frame
/// channel realization still allocates. Bit-identical to
/// [`measure_batched`] for the same `rng` state.
#[allow(clippy::too_many_arguments)]
pub fn measure_batched_into<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
    workers: usize,
    ws: &mut FrameWorkspace,
) -> Measurement
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + Clone + PartialEq + 'static,
{
    let mut acc = MeasureAccum::new(model.num_tx());
    for _ in 0..frames {
        let ch = model.realize(rng);
        let out = decode_frame_batched_into(cfg, &ch, detector, snr_db, rng, workers, ws);
        acc.absorb(out);
    }
    acc.finish(cfg, frames)
}

#[allow(clippy::too_many_arguments)]
fn measure_impl<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
    workers: Option<usize>,
    // One workspace for the whole measurement (or, via the `_in` entry
    // points, for the caller's whole sweep): plan and receive-chain
    // buffers are recycled across every frame (and, for `workers == 1`,
    // the detection path is allocation-free after the first frame).
    ws: &mut FrameWorkspace,
) -> Measurement
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    let mut acc = MeasureAccum::new(model.num_tx());
    for _ in 0..frames {
        let ch = model.realize(rng);
        let out = match workers {
            Some(w) => decode_frame_scoped_into(cfg, &ch, detector, snr_db, rng, w, ws),
            None => uplink_frame_with_csi_into(cfg, &ch, None, detector, snr_db, rng, ws),
        };
        acc.absorb(out);
    }
    acc.finish(cfg, frames)
}

/// Accumulates per-frame outcomes into a [`Measurement`].
struct MeasureAccum {
    clients: usize,
    ok_count: Vec<usize>,
    stats: DetectorStats,
    detections: u64,
}

impl MeasureAccum {
    fn new(clients: usize) -> Self {
        MeasureAccum {
            clients,
            ok_count: vec![0; clients],
            stats: DetectorStats::default(),
            detections: 0,
        }
    }

    fn absorb(&mut self, out: &crate::txrx::UplinkOutcome) {
        for (k, &ok) in out.client_ok.iter().enumerate() {
            if ok {
                self.ok_count[k] += 1;
            }
        }
        self.stats += out.stats;
        self.detections += out.detections;
    }

    fn finish(self, cfg: &PhyConfig, frames: usize) -> Measurement {
        let client_fer: Vec<f64> =
            self.ok_count.iter().map(|&ok| 1.0 - ok as f64 / frames as f64).collect();
        let total_ok: usize = self.ok_count.iter().sum();
        let fer = 1.0 - total_ok as f64 / (frames * self.clients) as f64;
        let delivered_bits = (total_ok * cfg.payload_bits) as f64;
        let airtime = frames as f64 * cfg.airtime_seconds();
        Measurement {
            frames,
            clients: self.clients,
            client_fer,
            fer,
            throughput_mbps: delivered_bits / airtime / 1e6,
            per_subcarrier: AverageStats::from_total(self.stats, self.detections),
        }
    }
}

/// Finds (by bisection over a dB grid) the SNR at which `detector` reaches
/// a target FER — used by the Fig. 15 methodology ("an SNR such that each
/// constellation reaches a frame error rate of approximately 10%").
pub fn snr_for_target_fer<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    target_fer: f64,
    frames: usize,
    rng: &mut R,
) -> f64
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    snr_search_impl(cfg, model, detector, target_fer, frames, rng, None)
}

/// [`snr_for_target_fer`] with each probe measurement decoded through the
/// batched path (`0` = machine parallelism). Returns the same SNR as the
/// serial search for the same `rng` state — the bisection consumes
/// identical measurements — in less wall-clock.
pub fn snr_for_target_fer_batched<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    target_fer: f64,
    frames: usize,
    rng: &mut R,
    workers: usize,
) -> f64
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    snr_search_impl(cfg, model, detector, target_fer, frames, rng, Some(workers))
}

fn snr_search_impl<R, M, D>(
    cfg: &PhyConfig,
    model: &M,
    detector: &D,
    target_fer: f64,
    frames: usize,
    rng: &mut R,
    workers: Option<usize>,
) -> f64
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    let mut lo = 0.0f64;
    let mut hi = 50.0f64;
    // One workspace across every probe of the bisection.
    let mut ws = FrameWorkspace::new();
    for _ in 0..7 {
        let mid = (lo + hi) / 2.0;
        let m = measure_impl(cfg, model, detector, mid, frames, rng, workers, &mut ws);
        if m.fer > target_fer {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// The best net throughput across constellations — the paper's ideal rate
/// adaptation ("we show throughput results for the constellation that
/// achieves the best average throughput for the corresponding range").
pub fn best_rate_measurement<R, M, D>(
    base_cfg: &PhyConfig,
    model: &M,
    detector: &D,
    snr_db: f64,
    frames: usize,
    rng: &mut R,
) -> (gs_modulation::Constellation, Measurement)
where
    R: Rng + ?Sized,
    M: ChannelModel,
    D: MimoDetector + ?Sized,
{
    let mut best: Option<(gs_modulation::Constellation, Measurement)> = None;
    for c in gs_modulation::Constellation::ALL {
        let cfg = PhyConfig { constellation: c, ..*base_cfg };
        let m = measure(&cfg, model, detector, snr_db, frames, rng);
        let better = match &best {
            None => true,
            Some((_, b)) => m.throughput_mbps > b.throughput_mbps,
        };
        if better {
            best = Some((c, m));
        }
    }
    best.expect("at least one constellation evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosphere_core::{geosphere_decoder, ZfDetector};
    use gs_channel::RayleighChannel;
    use gs_modulation::Constellation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg(c: Constellation) -> PhyConfig {
        PhyConfig { payload_bits: 256, ..PhyConfig::new(c) }
    }

    #[test]
    fn high_snr_full_throughput() {
        let mut rng = StdRng::seed_from_u64(181);
        let cfg = small_cfg(Constellation::Qam16);
        let model = RayleighChannel::new(4, 2);
        let m = measure(&cfg, &model, &geosphere_decoder(), 38.0, 8, &mut rng);
        assert!(m.fer < 0.1, "FER {}", m.fer);
        // 2 clients × 24 Mbps PHY, scaled by payload/total-info efficiency.
        assert!(m.throughput_mbps > 20.0, "throughput {}", m.throughput_mbps);
    }

    #[test]
    fn zero_snr_zero_throughput() {
        let mut rng = StdRng::seed_from_u64(182);
        let cfg = small_cfg(Constellation::Qam64);
        let model = RayleighChannel::new(2, 2);
        let m = measure(&cfg, &model, &ZfDetector, -10.0, 4, &mut rng);
        assert!(m.fer > 0.99);
        assert!(m.throughput_mbps < 0.5);
    }

    #[test]
    fn per_client_fer_lengths() {
        let mut rng = StdRng::seed_from_u64(183);
        let cfg = small_cfg(Constellation::Qpsk);
        let model = RayleighChannel::new(4, 3);
        let m = measure(&cfg, &model, &ZfDetector, 20.0, 3, &mut rng);
        assert_eq!(m.client_fer.len(), 3);
        assert_eq!(m.clients, 3);
        for f in &m.client_fer {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn measure_batched_into_matches_measure_batched() {
        let cfg = small_cfg(Constellation::Qam16);
        let model = RayleighChannel::new(4, 2);
        let det = geosphere_decoder();
        let mut ws = FrameWorkspace::new();
        for workers in [1usize, 3] {
            let mut rng = StdRng::seed_from_u64(185);
            let reference = measure_batched(&cfg, &model, &det, 20.0, 4, &mut rng, workers);
            let mut rng = StdRng::seed_from_u64(185);
            let pooled =
                measure_batched_into(&cfg, &model, &det, 20.0, 4, &mut rng, workers, &mut ws);
            assert_eq!(pooled.client_fer, reference.client_fer, "workers {workers}");
            assert_eq!(pooled.fer, reference.fer, "workers {workers}");
            assert_eq!(
                pooled.per_subcarrier.ped_calcs, reference.per_subcarrier.ped_calcs,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn sweep_reused_workspace_matches_fresh() {
        // A workspace carried across a whole sweep (several SNR points,
        // serial and batched) must be bit-identical to fresh-workspace
        // measurement at every point.
        let cfg = small_cfg(Constellation::Qam16);
        let model = RayleighChannel::new(4, 2);
        let det = geosphere_decoder();
        let mut ws = FrameWorkspace::new();
        for snr in [10.0, 18.0, 26.0] {
            let mut rng = StdRng::seed_from_u64(186);
            let fresh = measure(&cfg, &model, &det, snr, 3, &mut rng);
            let mut rng = StdRng::seed_from_u64(186);
            let reused = measure_in(&cfg, &model, &det, snr, 3, &mut rng, &mut ws);
            assert_eq!(reused.client_fer, fresh.client_fer, "snr {snr}");
            assert_eq!(reused.per_subcarrier.ped_calcs, fresh.per_subcarrier.ped_calcs);

            let mut rng = StdRng::seed_from_u64(187);
            let fresh_b = measure_batched(&cfg, &model, &det, snr, 3, &mut rng, 2);
            let mut rng = StdRng::seed_from_u64(187);
            let reused_b = measure_batched_in(&cfg, &model, &det, snr, 3, &mut rng, 2, &mut ws);
            assert_eq!(reused_b.client_fer, fresh_b.client_fer, "batched snr {snr}");
            assert_eq!(reused_b.per_subcarrier.ped_calcs, fresh_b.per_subcarrier.ped_calcs);
        }
    }

    #[test]
    fn snr_search_brackets_target() {
        let mut rng = StdRng::seed_from_u64(184);
        let cfg = small_cfg(Constellation::Qpsk);
        let model = RayleighChannel::new(4, 2);
        let snr = snr_for_target_fer(&cfg, &model, &geosphere_decoder(), 0.1, 6, &mut rng);
        assert!((0.0..50.0).contains(&snr), "snr {snr}");
        // At snr+10 dB the FER must be clearly below target.
        let m = measure(&cfg, &model, &geosphere_decoder(), snr + 10.0, 10, &mut rng);
        assert!(m.fer <= 0.35, "fer {} at {} dB", m.fer, snr + 10.0);
    }
}
