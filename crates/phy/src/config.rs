//! PHY configuration and rate accounting.

use gs_coding::CodeRate;
use gs_modulation::Constellation;

/// OFDM symbol duration (s): 3.2 µs useful + 0.8 µs cyclic prefix, the
/// 802.11a/g/n numerology of the paper's 20 MHz channel.
pub const OFDM_SYMBOL_SECONDS: f64 = 4.0e-6;
/// Data subcarriers per OFDM symbol.
pub const DATA_SUBCARRIERS: usize = 48;
/// FFT size of the 20 MHz OFDM numerology.
pub const FFT_SIZE: usize = 64;
/// Cyclic prefix length in samples.
pub const CYCLIC_PREFIX: usize = 16;

/// Static PHY parameters for one transmission.
#[derive(Clone, Copy, Debug)]
pub struct PhyConfig {
    /// Constellation used on every data subcarrier.
    pub constellation: Constellation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
    /// Data subcarriers per OFDM symbol.
    pub n_subcarriers: usize,
    /// Information payload bits per client frame (before CRC/tail/padding).
    pub payload_bits: usize,
}

impl PhyConfig {
    /// The paper's §4 configuration: rate-1/2 coding over 48 subcarriers,
    /// with a simulation-friendly 2048-bit payload.
    pub fn new(constellation: Constellation) -> Self {
        PhyConfig {
            constellation,
            code_rate: CodeRate::Half,
            n_subcarriers: DATA_SUBCARRIERS,
            payload_bits: 2048,
        }
    }

    /// Coded bits per OFDM symbol per stream (`N_CBPS`).
    pub fn n_cbps(&self) -> usize {
        self.n_subcarriers * self.constellation.bits_per_symbol()
    }

    /// Information (data) bits per OFDM symbol per stream (`N_DBPS`).
    pub fn n_dbps(&self) -> usize {
        self.n_cbps() * self.code_rate.numerator() / self.code_rate.denominator()
    }

    /// Per-stream PHY bit rate in Mbps (the 802.11 rate table generalized:
    /// e.g. 64-QAM rate-1/2 over 48 subcarriers = 36 Mbps).
    pub fn phy_rate_mbps(&self) -> f64 {
        self.n_dbps() as f64 / OFDM_SYMBOL_SECONDS / 1e6
    }

    /// Number of OFDM symbols a frame occupies, after CRC, tail, and
    /// pad-to-symbol-boundary accounting.
    pub fn n_ofdm_symbols(&self) -> usize {
        // payload + 32 CRC bits + pad, then 6 tail bits, must fill whole
        // OFDM symbols of N_DBPS information bits each.
        let base = self.payload_bits + 32 + gs_coding::conv::CONSTRAINT - 1;
        base.div_ceil(self.n_dbps())
    }

    /// Total information bits carried (payload + CRC + tail + pad).
    pub fn total_info_bits(&self) -> usize {
        self.n_ofdm_symbols() * self.n_dbps()
    }

    /// Pad bits appended after the CRC so the tail lands on an OFDM symbol
    /// boundary.
    pub fn pad_bits(&self) -> usize {
        self.total_info_bits() - self.payload_bits - 32 - (gs_coding::conv::CONSTRAINT - 1)
    }

    /// Frame airtime in seconds.
    pub fn airtime_seconds(&self) -> f64 {
        self.n_ofdm_symbols() as f64 * OFDM_SYMBOL_SECONDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_table_matches_80211() {
        // Classic 802.11a rates: QPSK 1/2 = 12 Mbps, 16-QAM 1/2 = 24 Mbps,
        // 64-QAM 1/2 = 36 Mbps (and 3/4 = 54 Mbps).
        assert!((PhyConfig::new(Constellation::Qpsk).phy_rate_mbps() - 12.0).abs() < 1e-9);
        assert!((PhyConfig::new(Constellation::Qam16).phy_rate_mbps() - 24.0).abs() < 1e-9);
        assert!((PhyConfig::new(Constellation::Qam64).phy_rate_mbps() - 36.0).abs() < 1e-9);
        let mut cfg54 = PhyConfig::new(Constellation::Qam64);
        cfg54.code_rate = CodeRate::ThreeQuarters;
        assert!((cfg54.phy_rate_mbps() - 54.0).abs() < 1e-9);
        assert!((PhyConfig::new(Constellation::Qam256).phy_rate_mbps() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn frame_fills_whole_symbols() {
        for c in Constellation::ALL {
            let cfg = PhyConfig::new(c);
            let total = cfg.total_info_bits();
            assert_eq!(total % cfg.n_dbps(), 0);
            assert_eq!(
                cfg.payload_bits + 32 + 6 + cfg.pad_bits(),
                total,
                "{c:?}: accounting must balance"
            );
        }
    }

    #[test]
    fn airtime_scales_with_payload() {
        let mut small = PhyConfig::new(Constellation::Qam16);
        small.payload_bits = 512;
        let mut large = small;
        large.payload_bits = 8192;
        assert!(large.airtime_seconds() > small.airtime_seconds());
    }
}
