//! Wall-clock decode throughput per detector × constellation × MIMO size.
//!
//! Supporting evidence for the paper's feasibility argument: PED counts
//! are the architecture-neutral metric (Figs. 14–15), but wall-clock
//! vectors/second show the same ordering on a real CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geosphere_core::{ethsd_decoder, geosphere_decoder, MimoDetector, MmseSicDetector, ZfDetector};
use gs_channel::{
    noise_variance_for_snr_db, sample_cn, ChannelModel, RayleighChannel, SelectiveRayleighChannel,
};
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};
use gs_phy::{
    decode_frame_batched, decode_frame_batched_into, uplink_frame, FrameWorkspace, PhyConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instances(
    c: Constellation,
    na: usize,
    nc: usize,
    snr_db: f64,
    n: usize,
) -> Vec<(Matrix, Vec<Complex>)> {
    let mut rng = StdRng::seed_from_u64(42);
    let sigma2 = noise_variance_for_snr_db(snr_db);
    let pts = c.points();
    (0..n)
        .map(|_| {
            let h = RayleighChannel::new(na, nc).sample_matrix(&mut rng).scale(c.scale());
            let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = geosphere_core::apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            (h, y)
        })
        .collect()
}

fn bench_decoders(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("decode_4x4_20dB");
    for c in [Constellation::Qam16, Constellation::Qam64, Constellation::Qam256] {
        let set = instances(c, 4, 4, 20.0, 64);
        let detectors: Vec<(&str, Box<dyn MimoDetector>)> = vec![
            ("geosphere", Box::new(geosphere_decoder())),
            ("ethsd", Box::new(ethsd_decoder())),
            ("zf", Box::new(ZfDetector)),
            ("mmse-sic", Box::new(MmseSicDetector::new(0.01))),
        ];
        for (name, det) in detectors {
            group.bench_with_input(BenchmarkId::new(name, format!("{c:?}")), &set, |b, set| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for (h, y) in set {
                        acc += det.detect(h, y, c).stats.visited_nodes.max(1);
                    }
                    acc
                })
            });
        }
    }
    group.finish();
}

/// Frame-level decode: the serial per-subcarrier receive path vs
/// `decode_frame_batched` (per-subcarrier QR amortized across the frame's
/// OFDM symbols, fanned out over a worker pool). One 64-subcarrier
/// 4×4 64-QAM frame per iteration; outputs are bit-identical, so any gap
/// is pure engine overhead/speedup.
fn bench_frame_decode(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("frame_decode_4x4_qam64_64sc");
    let cfg =
        PhyConfig { n_subcarriers: 64, payload_bits: 2048, ..PhyConfig::new(Constellation::Qam64) };
    let snr_db = 28.0;
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: 64,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(2014));
    let det = geosphere_decoder();

    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(77);
            uplink_frame(&cfg, &ch, &det, snr_db, &mut rng).stats.ped_calcs
        })
    });
    for workers in [1usize, 2, 4, 8] {
        // The pool clamps to the hardware; label with the effective count
        // so series aren't mistaken for distinct configurations on small
        // machines.
        let effective = geosphere_core::BatchDetector::new(&det, workers).workers();
        group.bench_function(
            BenchmarkId::new("batched", format!("{workers}w_eff{effective}")),
            |b| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(77);
                    decode_frame_batched(&cfg, &ch, &det, snr_db, &mut rng, workers).stats.ped_calcs
                })
            },
        );
    }
    // The steady-state receive loop: one FrameWorkspace held across frames
    // (decode_frame_batched_into), so planning, detection, and the receive
    // chain are allocation-free per frame. Outputs are bit-identical to the
    // series above; any gap is pure allocator/reuse savings (plus, at >1
    // worker, the persistent pool replacing per-frame thread spawns).
    for workers in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new("batched_into_reused_ws", format!("{workers}w")),
            |b| {
                let mut ws = FrameWorkspace::new();
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(77);
                    decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, workers, &mut ws)
                        .stats
                        .ped_calcs
                })
            },
        );
    }
    group.finish();
}

/// The frame-level workspace-reuse win, isolated: the same frame decoded
/// through a fresh `FrameWorkspace` per frame (the one-shot
/// `decode_frame_batched` behavior) versus one long-lived workspace — the
/// steady-state receiver configuration whose per-frame zero-allocation
/// contract `tests/alloc_regression.rs` enforces.
fn bench_frame_workspace_reuse(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("frame_workspace_reuse_4x4_qam16_48sc");
    let cfg = PhyConfig { payload_bits: 2048, ..PhyConfig::new(Constellation::Qam16) };
    let snr_db = 24.0;
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: cfg.n_subcarriers,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(2015));
    let det = geosphere_decoder();

    group.bench_function("fresh_workspace_per_frame", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(78);
            let mut ws = FrameWorkspace::new();
            decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, 1, &mut ws).stats.ped_calcs
        })
    });
    group.bench_function("reused_workspace", |b| {
        let mut ws = FrameWorkspace::new();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(78);
            decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, 1, &mut ws).stats.ped_calcs
        })
    });
    group.finish();
}

/// The allocation-refactor win, isolated: the same per-symbol
/// `detect_with_qr` searches driven (a) with a fresh `SearchWorkspace` per
/// call — the old allocate-per-symbol behavior — versus (b) through one
/// long-lived workspace, the steady-state receiver configuration where the
/// hot path performs zero heap allocations (enforced by
/// `tests/alloc_regression.rs`).
fn bench_workspace_reuse(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("workspace_reuse_4x4_qam64_20dB");
    let c = Constellation::Qam64;
    let nc = 4;
    let set = instances(c, 4, nc, 20.0, 64);
    let prepared: Vec<_> = set
        .iter()
        .map(|(h, y)| {
            let qr = gs_linalg::qr_decompose(h);
            let yhat = qr.rotate(y);
            (qr, yhat)
        })
        .collect();
    let det = geosphere_decoder();

    group.bench_function("fresh_workspace_per_symbol", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (qr, yhat) in &prepared {
                let mut ws = det.make_workspace();
                let mut stats = geosphere_core::DetectorStats::default();
                det.detect_with_qr(&qr.r, &yhat[..nc], c, &mut ws, &mut stats);
                acc += stats.visited_nodes;
            }
            acc
        })
    });
    group.bench_function("reused_workspace", |b| {
        let mut ws = det.make_workspace();
        b.iter(|| {
            let mut acc = 0u64;
            for (qr, yhat) in &prepared {
                let mut stats = geosphere_core::DetectorStats::default();
                det.detect_with_qr(&qr.r, &yhat[..nc], c, &mut ws, &mut stats);
                acc += stats.visited_nodes;
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decoders, bench_frame_decode, bench_workspace_reuse, bench_frame_workspace_reuse
}
criterion_main!(benches);
