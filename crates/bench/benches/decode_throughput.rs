//! Wall-clock decode throughput per detector × constellation × MIMO size.
//!
//! Supporting evidence for the paper's feasibility argument: PED counts
//! are the architecture-neutral metric (Figs. 14–15), but wall-clock
//! vectors/second show the same ordering on a real CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geosphere_core::{
    ethsd_decoder, geosphere_decoder, MimoDetector, MmseSicDetector, ZfDetector,
};
use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instances(
    c: Constellation,
    na: usize,
    nc: usize,
    snr_db: f64,
    n: usize,
) -> Vec<(Matrix, Vec<Complex>)> {
    let mut rng = StdRng::seed_from_u64(42);
    let sigma2 = noise_variance_for_snr_db(snr_db);
    let pts = c.points();
    (0..n)
        .map(|_| {
            let h = RayleighChannel::new(na, nc).sample_matrix(&mut rng).scale(c.scale());
            let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = geosphere_core::apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            (h, y)
        })
        .collect()
}

fn bench_decoders(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("decode_4x4_20dB");
    for c in [Constellation::Qam16, Constellation::Qam64, Constellation::Qam256] {
        let set = instances(c, 4, 4, 20.0, 64);
        let detectors: Vec<(&str, Box<dyn MimoDetector>)> = vec![
            ("geosphere", Box::new(geosphere_decoder())),
            ("ethsd", Box::new(ethsd_decoder())),
            ("zf", Box::new(ZfDetector)),
            ("mmse-sic", Box::new(MmseSicDetector::new(0.01))),
        ];
        for (name, det) in detectors {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{c:?}")),
                &set,
                |b, set| {
                    b.iter(|| {
                        let mut acc = 0u64;
                        for (h, y) in set {
                            acc += det.detect(h, y, c).stats.visited_nodes.max(1);
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decoders
}
criterion_main!(benches);
