//! Ablation: per-node enumeration cost, Geosphere 2-D zigzag vs the
//! ETH-SD/Hess row scheme vs the naive full sort, as a function of
//! constellation density and of how many children are actually needed.
//!
//! This isolates the §3.1.1 design choice: the zigzag's advantage is that
//! a node expansion that only ever needs its first few children (the
//! common case at reasonable SNR) never pays for the rest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geosphere_core::sphere::{
    EnumeratorFactory, ExhaustiveSortFactory, GeosphereFactory, HessFactory, NodeEnumerator,
};
use geosphere_core::DetectorStats;
use gs_linalg::Complex;
use gs_modulation::Constellation;

fn drain_k<F: EnumeratorFactory>(factory: &F, c: Constellation, k: usize) -> u64 {
    let mut stats = DetectorStats::default();
    // A spread of centers so the benches cover different slice geometries.
    let centers = [
        Complex::new(0.2, -0.6),
        Complex::new(3.4, 2.9),
        Complex::new(-1.1, 0.1),
        Complex::new(7.7, -7.3),
    ];
    let mut acc = 0u64;
    for &center in &centers {
        let mut e = factory.make(c, center, 1.0, &mut stats);
        for _ in 0..k {
            if let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
                acc = acc.wrapping_add(ch.point.i as u64);
            }
        }
    }
    acc + stats.ped_calcs
}

fn bench_enumeration(cr: &mut Criterion) {
    for c in [Constellation::Qam16, Constellation::Qam64, Constellation::Qam256] {
        let mut group = cr.benchmark_group(format!("enumerate_{c:?}"));
        for &k in &[1usize, 4, 16] {
            group.bench_with_input(BenchmarkId::new("geosphere_zigzag", k), &k, |b, &k| {
                b.iter(|| drain_k(&GeosphereFactory::zigzag_only(), c, k))
            });
            group.bench_with_input(BenchmarkId::new("hess_rows", k), &k, |b, &k| {
                b.iter(|| drain_k(&HessFactory, c, k))
            });
            group.bench_with_input(BenchmarkId::new("full_sort", k), &k, |b, &k| {
                b.iter(|| drain_k(&ExhaustiveSortFactory, c, k))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_enumeration
}
criterion_main!(benches);
