//! Ablation: full Geosphere (zigzag + geometric pruning) vs zigzag-only,
//! across SNRs — the §5.3.2 decomposition ("the zigzag algorithm is the
//! main source of complexity improvement for large constellations, while
//! early pruning provides complexity gains of 13–17%", rising to 47% at 1%
//! FER operating points).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geosphere_core::{geosphere_decoder, geosphere_zigzag_only_decoder, MimoDetector};
use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instances(c: Constellation, snr_db: f64, n: usize) -> Vec<(Matrix, Vec<Complex>)> {
    let mut rng = StdRng::seed_from_u64(4242);
    let sigma2 = noise_variance_for_snr_db(snr_db);
    let pts = c.points();
    (0..n)
        .map(|_| {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = geosphere_core::apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            (h, y)
        })
        .collect()
}

fn bench_geoprune(cr: &mut Criterion) {
    let c = Constellation::Qam64;
    for snr in [20.0, 30.0, 40.0] {
        let mut group = cr.benchmark_group(format!("geoprune_64qam_{snr:.0}dB"));
        let set = instances(c, snr, 48);
        group.bench_with_input(BenchmarkId::new("full", snr as u64), &set, |b, set| {
            let det = geosphere_decoder();
            b.iter(|| set.iter().map(|(h, y)| det.detect(h, y, c).stats.ped_calcs).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("zigzag_only", snr as u64), &set, |b, set| {
            let det = geosphere_zigzag_only_decoder();
            b.iter(|| set.iter().map(|(h, y)| det.detect(h, y, c).stats.ped_calcs).sum::<u64>())
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_geoprune
}
criterion_main!(benches);
