//! Micro-benchmarks for the beyond-the-paper extensions: soft-output
//! detection (counter-hypothesis searches), vector-perturbation precoding,
//! and the SISO decoders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geosphere_core::{SoftGeosphereDetector, VectorPerturbationPrecoder};
use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
use gs_coding::{bcjr, conv, viterbi};
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn soft_instances(c: Constellation, n: usize) -> Vec<(Matrix, Vec<Complex>)> {
    let mut rng = StdRng::seed_from_u64(99);
    let sigma2 = noise_variance_for_snr_db(22.0);
    let pts = c.points();
    (0..n)
        .map(|_| {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = geosphere_core::apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            (h, y)
        })
        .collect()
}

fn bench_soft_detection(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("soft_detection_4x4_22dB");
    for c in [Constellation::Qpsk, Constellation::Qam16] {
        let set = soft_instances(c, 16);
        let det = SoftGeosphereDetector::new(noise_variance_for_snr_db(22.0));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{c:?}")), &set, |b, set| {
            b.iter(|| {
                set.iter().map(|(h, y)| det.detect_soft(h, y, c).stats.ped_calcs).sum::<u64>()
            })
        });
    }
    group.finish();
}

fn bench_vp_precoding(cr: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(100);
    let c = Constellation::Qam16;
    let pts = c.points();
    let mut group = cr.benchmark_group("vp_precode");
    for users in [2usize, 4] {
        let h = RayleighChannel::new(users, users).sample_matrix(&mut rng);
        let pre = VectorPerturbationPrecoder::new(&h, c).unwrap();
        let symbols: Vec<Vec<GridPoint>> = (0..16)
            .map(|_| (0..users).map(|_| pts[rng.gen_range(0..pts.len())]).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(users), &symbols, |b, set| {
            b.iter(|| set.iter().map(|s| pre.precode(s).gamma).sum::<f64>())
        });
    }
    group.finish();
}

fn bench_siso_decoders(cr: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(101);
    let bits: Vec<bool> = (0..512).map(|_| rng.gen_bool(0.5)).collect();
    let coded = conv::encode(&bits);
    let llrs: Vec<f64> = coded.iter().map(|&b| if b { -3.0 } else { 3.0 }).collect();
    cr.bench_function("soft_viterbi_512bits", |b| b.iter(|| viterbi::decode_soft(&llrs).len()));
    cr.bench_function("bcjr_512bits", |b| b.iter(|| bcjr::siso_decode(&llrs).info_bits.len()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_soft_detection, bench_vp_precoding, bench_siso_decoders
}
criterion_main!(benches);
