//! Substrate micro-benchmarks: QR decomposition, Viterbi decoding, FFT,
//! and the geometric-channel realization — the fixed costs surrounding the
//! sphere search in a real receiver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_channel::{ApArray, ChannelModel, GeometricChannel, Pos, RayleighChannel};
use gs_coding::{conv, viterbi};
use gs_linalg::{fft, qr_decompose, Complex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_qr(cr: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = cr.benchmark_group("qr");
    for n in [2usize, 4, 8, 10] {
        let h = RayleighChannel::new(n, n).sample_matrix(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| qr_decompose(h).r[(0, 0)])
        });
    }
    group.finish();
}

fn bench_viterbi(cr: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let bits: Vec<bool> = (0..1024).map(|_| rng.gen_bool(0.5)).collect();
    let coded = conv::encode(&bits);
    cr.bench_function("viterbi_1024bits", |b| b.iter(|| viterbi::decode(&coded).len()));
}

fn bench_fft(cr: &mut Criterion) {
    let data: Vec<Complex> =
        (0..64).map(|k| Complex::new((k as f64).sin(), (k as f64).cos())).collect();
    cr.bench_function("fft_64", |b| {
        b.iter(|| {
            let mut d = data.clone();
            fft(&mut d);
            d[0]
        })
    });
}

fn bench_channel(cr: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let ap = ApArray::new(Pos::new(0.0, 0.0), 4, 0.0);
    let clients =
        vec![Pos::new(10.0, 3.0), Pos::new(12.0, -2.0), Pos::new(8.0, 6.0), Pos::new(14.0, 1.0)];
    let model = GeometricChannel::indoor_nlos(ap, clients);
    cr.bench_function("geometric_channel_4x4_48sc", |b| {
        b.iter(|| model.realize(&mut rng).subcarrier(0)[(0, 0)])
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_qr, bench_viterbi, bench_fft, bench_channel
}
criterion_main!(benches);
