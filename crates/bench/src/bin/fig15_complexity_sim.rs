//! Figure 15: simulation-based complexity at the SNR where each
//! constellation reaches ~10% FER — ETH-SD vs 2D-zigzag-only vs full
//! Geosphere, on Rayleigh (solid bars) and emulated-testbed (striped bars)
//! channels.
//!
//! `--clients 2` reproduces Fig. 15(a) (2 clients × 4 AP antennas);
//! `--clients 4` reproduces Fig. 15(b). `--target-fer 0.01` reproduces the
//! §5.3.2 discussion point (geometric pruning worth up to 47% extra).
//! N.B. (paper): each sphere decoder visits the same number of nodes.

use gs_bench::{arg_f64, arg_usize, params_from_args, rule};
use gs_channel::Testbed;
use gs_modulation::Constellation;
use gs_sim::complexity_at_target_fer;

fn main() {
    let params = params_from_args();
    let clients = arg_usize("--clients", 4);
    let target_fer = arg_f64("--target-fer", 0.10);
    let tb = Testbed::office();

    println!(
        "Figure 15 — Avg PED calcs/subcarrier at ~{:.0}% FER, {clients} clients x 4 AP antennas",
        target_fer * 100.0
    );
    rule(100);
    println!(
        "{:>8} {:>9} | {:>10} {:>12} {:>12} | {:>12} {:>10}",
        "const.", "channel", "ETH-SD", "2D-zigzag", "Geosphere", "Geo/ETH", "nodes"
    );
    rule(100);
    for c in [Constellation::Qam16, Constellation::Qam64, Constellation::Qam256] {
        for tb_opt in [None, Some(&tb)] {
            let pts = complexity_at_target_fer(&params, tb_opt, clients, 4, c, target_fer);
            let (eth, zz, full) = (&pts[0], &pts[1], &pts[2]);
            println!(
                "{:>8} {:>9} | {:>10.1} {:>12.1} {:>12.1} | {:>11.0}% {:>10.1}",
                format!("{:?}", c),
                eth.channel,
                eth.ped_per_subcarrier,
                zz.ped_per_subcarrier,
                full.ped_per_subcarrier,
                100.0 * full.ped_per_subcarrier / eth.ped_per_subcarrier.max(1e-9),
                full.nodes_per_subcarrier,
            );
            // The paper's invariant: identical visited nodes across decoders.
            let max_dev = (eth.nodes_per_subcarrier - full.nodes_per_subcarrier)
                .abs()
                .max((zz.nodes_per_subcarrier - full.nodes_per_subcarrier).abs());
            if max_dev > 1e-6 {
                println!("  !! visited-node mismatch: {max_dev}");
            }
        }
    }
    rule(100);
    println!("Geo/ETH = full Geosphere PEDs as a fraction of ETH-SD PEDs (lower is better).");
}
