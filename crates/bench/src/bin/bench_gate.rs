//! The CI bench-regression gates for the frame hot paths.
//!
//! Five modes, selected by `--mode`:
//!
//! * `frame_decode` (default, PR 4): times one 64-subcarrier 4×4 64-QAM
//!   uplink frame at 28 dB through the Geosphere decoder across the decode
//!   modes (serial reference, batched at several worker counts, the
//!   steady-state reused-workspace path), writes `BENCH_pr4.json`, and
//!   gates the `batched_1w / serial` ratio against
//!   `crates/bench/baselines/pr4_frame_decode.json`.
//! * `frame_stream` (PR 5): measures **sustained frames/sec** over the same
//!   scenario — back-to-back serial `decode_frame_batched_into` vs the
//!   `gs-runtime` streaming pipeline kept full at 2 and 4 detection
//!   workers — writes `BENCH_pr5.json`, and gates the
//!   `stream_4w / serial` per-frame-time ratio against
//!   `crates/bench/baselines/pr5_frame_stream.json`. On a multi-core box
//!   the ratio is well below 1 — the streaming acceptance target is ≥1.3×
//!   sustained throughput at 4 workers; a single-core runner can only hold
//!   the pipeline-overhead line. Because this ratio genuinely depends on
//!   core count (unlike `frame_decode`'s 1-worker-vs-1-worker metric),
//!   the tight relative gate only arms when the runner's available
//!   parallelism matches the `"parallelism"` recorded in the baseline; on
//!   a mismatch, a core-count-independent **ceiling** (stream must never
//!   exceed serial per-frame time by more than 25%) still catches
//!   catastrophic streaming regressions.
//! * `deadline_storm` (PR 6): the adaptive-control-plane gate. Measures
//!   the serial per-frame time of the storm's frame shape at the sphere
//!   ceiling *and* the MMSE floor, places a machine-relative deadline at
//!   the slot-pool depth times the geometric mean of the two (above what
//!   the floor can sustain at saturation, below what sphere-only can),
//!   then drives the same saturating multi-client load through a
//!   static-sphere pipeline and the adaptive ladder
//!   (`gs_sim::run_deadline_storm`),
//!   followed by a storm → drain → trickle pass
//!   (`gs_sim::run_drain_recovery`). **Hard gates** (machine-independent
//!   by construction, since the deadline is calibrated in-process): the
//!   adaptive pipeline must miss *strictly fewer* deadlines than static
//!   sphere, must actually degrade during the storm, and must climb back
//!   to the sphere tier after the drain. A **soft gate** against
//!   `crates/bench/baselines/pr6_deadline_storm.json` bounds the adaptive
//!   miss rate at the baseline's figure plus 0.25 absolute headroom
//!   (miss rates are load-sensitive across runner generations; the
//!   headroom keeps the gate about regressions, not runner lottery).
//!   Writes `BENCH_pr6.json`.
//! * `multi_symbol` (PR 7): times the same frame through the full batched
//!   decode twice in-process — once with the multi-symbol sphere lockstep
//!   and the multi-stream Viterbi disengaged (`single_sym`, the pre-batch
//!   per-symbol path) and once with the defaults (`multi_sym`) — writes
//!   `BENCH_pr7.json`, and gates the `multi_sym / single_sym` ratio
//!   against `crates/bench/baselines/pr7_multi_symbol.json`. Both sides of
//!   this ratio are in-process timings with independent co-tenancy noise
//!   tails, so this mode gates on per-mode **minima** (noise is strictly
//!   additive; the min is the stable estimator) with a 15% band instead
//!   of the trimmed-mean/10% pairing the other timing modes use.
//! * `metrics` (PR 8): the telemetry-accuracy gate. Saturates a streaming
//!   pipeline from a driver thread while a live `gs-telemetry`
//!   `/metrics` endpoint serves it, scrapes twice one second apart, and
//!   **hard-gates** (no committed baseline needed — both sides of the
//!   comparison are measured in the same run, so the hardware term is
//!   absent, not merely cancelled): the exposition must lint clean and
//!   stay counter-monotone across the scrapes, and
//!   `gs_windowed_frames_per_sec` at the second scrape must agree with
//!   the actual delivered rate (Δ`gs_frames_completed_total` over
//!   Δ`gs_uptime_seconds`) within 10% — the regression this catches is
//!   exactly the pre-PR-8 bug where the 128-entry delivery ring clamped
//!   the windowed figure at 128 fps while the bench sustained several
//!   hundred. Writes `BENCH_pr8.json` including the latency/queue-wait/
//!   slack histogram summaries.
//!
//! All five gates are **machine-relative**: the timing modes compare the
//! ratio of two modes measured in the same process against the same ratio
//! from the committed baseline, and the storm mode calibrates its
//! deadline from in-process measurements. Absolute milliseconds vary with
//! the runner's silicon (ephemeral CI machines span CPU generations); the
//! ratio cancels the hardware term, so the gate trips on code regressions
//! rather than on runner lottery. **Failing** = exit code 1 (for the
//! timing modes, a regression of more than 10%). The absolute means are
//! still recorded in the JSON for human inspection.
//!
//! The mean is trimmed (middle half of the sorted samples) so one noisy
//! scheduler hiccup on a shared runner cannot fail the gate by itself;
//! an improvement beyond the baseline prints a hint to refresh it.
//!
//! * `trace` (PR 10): the flight-recorder overhead gate. Measures the
//!   sustained streaming per-frame time twice in the same process —
//!   recorder disarmed, then armed — and hard-gates the armed/disarmed
//!   minimum ratio at 1.05 (≤5% fps overhead with the recorder live).
//!   Both sides carry independent in-process noise tails, so the gate
//!   uses per-mode minima like `multi_symbol`. Without `--features
//!   trace` the recorder is compiled out, both runs measure identical
//!   code, and the gate documents the erasure. Writes `BENCH_pr10.json`.
//!
//! Flags: `--mode frame_decode|frame_stream|multi_symbol|deadline_storm|metrics|campaign|trace`,
//! `--out <path>`, `--baseline <path>`, `--samples <n>`,
//! `--write-baseline` (regenerate the committed baseline instead of
//! gating — run on a quiet machine).

use geosphere_core::{geosphere_decoder, DetectorTier, MmseDetector};
use gs_channel::{noise_variance_for_snr_db, ChannelModel, MimoChannel, SelectiveRayleighChannel};
use gs_modulation::Constellation;
use gs_phy::{
    decode_frame_batched, decode_frame_batched_into, uplink_frame, FrameWorkspace, PhyConfig,
};
use gs_runtime::{FrameStream, StreamConfig, UplinkFrame};
use gs_sim::scenario::presets;
use gs_sim::{run_campaign, run_deadline_storm, run_drain_recovery, CampaignConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Allowed regression of the gated ratio vs the baseline's ratio.
const MAX_REGRESSION: f64 = 0.10;
/// The multi_symbol gate carries independent noise in both sides of its
/// in-process ratio (see the min-based gating comment in `main`), so it
/// gets a slightly wider band than the single-noise-term mode gates.
const MULTI_SYMBOL_MAX_REGRESSION: f64 = 0.15;

struct ModeResult {
    name: &'static str,
    mean_ms: f64,
    min_ms: f64,
}

/// Trimmed mean (middle half) and min of raw per-frame times, in ms.
fn summarize(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let lo = samples.len() / 4;
    let hi = samples.len() - lo;
    let mid = &samples[lo..hi];
    (mid.iter().sum::<f64>() / mid.len() as f64 * 1e3, min * 1e3)
}

fn time_mode(samples: usize, mut f: impl FnMut() -> u64) -> (f64, f64) {
    // Two warmup frames grow every workspace/pool buffer before timing.
    std::hint::black_box(f());
    std::hint::black_box(f());
    let raw: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    summarize(raw)
}

/// The one timing harness every mode goes through (PR 4–6 each grew a
/// copy of this loop; they now share it): two warmups, `samples` timed
/// calls, trimmed mean + min, normalized to per-frame ms when one call
/// covers `frames_per_call` frames.
fn measure_mode(
    name: &'static str,
    samples: usize,
    frames_per_call: usize,
    f: impl FnMut() -> u64,
) -> ModeResult {
    let (mean, min) = time_mode(samples, f);
    let n = frames_per_call as f64;
    ModeResult { name, mean_ms: mean / n, min_ms: min / n }
}

/// The shared scenario of both modes: one 64-subcarrier 4×4 64-QAM uplink
/// frame at 28 dB through the Geosphere decoder over a frequency-selective
/// indoor channel.
fn scenario() -> (PhyConfig, f64, MimoChannel) {
    let cfg =
        PhyConfig { n_subcarriers: 64, payload_bits: 2048, ..PhyConfig::new(Constellation::Qam64) };
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: 64,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(2014));
    (cfg, 28.0, ch)
}

fn run_all(samples: usize) -> Vec<ModeResult> {
    let (cfg, snr_db, ch) = scenario();
    let det = geosphere_decoder();

    let mut out = Vec::new();
    out.push(measure_mode("serial", samples, 1, || {
        let mut rng = StdRng::seed_from_u64(77);
        uplink_frame(&cfg, &ch, &det, snr_db, &mut rng).stats.ped_calcs
    }));

    for (name, workers) in [("batched_1w", 1usize), ("batched_2w", 2), ("batched_4w", 4)] {
        out.push(measure_mode(name, samples, 1, || {
            let mut rng = StdRng::seed_from_u64(77);
            decode_frame_batched(&cfg, &ch, &det, snr_db, &mut rng, workers).stats.ped_calcs
        }));
    }

    for (name, workers) in [("batched_into_1w", 1usize), ("batched_into_4w", 4)] {
        let mut ws = FrameWorkspace::new();
        out.push(measure_mode(name, samples, 1, || {
            let mut rng = StdRng::seed_from_u64(77);
            decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, workers, &mut ws)
                .stats
                .ped_calcs
        }));
    }
    out
}

/// `multi_symbol` mode (PR 7): the same frame as `frame_decode`, one
/// worker, decoded with every multi-symbol batching knob off
/// (`single_sym`: per-job sphere searches, per-client Viterbi) and with
/// the defaults on (`multi_sym`: lockstep sphere descents through
/// `cdot_soa_multi`, one SoA Viterbi pass across the frame's clients).
/// Both produce bit-identical frames; the gate is purely about speed.
fn run_multi(samples: usize) -> Vec<ModeResult> {
    let (cfg, snr_db, ch) = scenario();
    let mut out = Vec::new();
    {
        let det = geosphere_decoder().with_single_symbol();
        let mut ws = FrameWorkspace::new();
        ws.set_per_client_viterbi(true);
        out.push(measure_mode("single_sym", samples, 1, || {
            let mut rng = StdRng::seed_from_u64(77);
            decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, 1, &mut ws).stats.ped_calcs
        }));
    }
    {
        let det = geosphere_decoder();
        let mut ws = FrameWorkspace::new();
        out.push(measure_mode("multi_sym", samples, 1, || {
            let mut rng = StdRng::seed_from_u64(77);
            decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, 1, &mut ws).stats.ped_calcs
        }));
    }
    out
}

/// Frames pushed through per timed sample in `frame_stream` mode — enough
/// that the pipeline's fill/drain edges are a small fraction of the
/// sample, so the number approximates *sustained* throughput.
const STREAM_FRAMES_PER_SAMPLE: usize = 24;

/// Keeps the pipeline full from one thread: admit until refused, then
/// consume one and continue; drain the tail. Returns an opaque checksum.
fn drive_stream(stream: &FrameStream, ch: &Arc<MimoChannel>, snr_db: f64, n: usize) -> u64 {
    let mut acc = 0u64;
    let mut submitted = 0usize;
    let mut received = 0usize;
    while received < n {
        if submitted < n {
            let f = UplinkFrame::new(submitted % 4, Arc::clone(ch), snr_db, 77 + submitted as u64);
            if stream.try_submit(f).is_ok() {
                submitted += 1;
                continue;
            }
        }
        let done = stream.recv().expect("stream died mid-benchmark");
        acc += done.outcome().stats.ped_calcs;
        received += 1;
    }
    acc
}

/// `frame_stream` mode: sustained frames/sec, serial vs the streaming
/// runtime at 2 and 4 detection workers. Results are **per-frame** ms so
/// the JSON stays comparable with `frame_decode`'s shape.
fn run_stream(samples: usize) -> Vec<ModeResult> {
    let (cfg, snr_db, ch) = scenario();
    let ch = Arc::new(ch);
    let det = geosphere_decoder();
    let mut out = Vec::new();

    // Serial baseline: back-to-back single-worker frames through one
    // recycled workspace — the exact loop a non-streaming receiver runs.
    {
        let mut ws = FrameWorkspace::new();
        out.push(measure_mode("serial", samples, STREAM_FRAMES_PER_SAMPLE, || {
            let mut acc = 0u64;
            for k in 0..STREAM_FRAMES_PER_SAMPLE {
                let mut rng = StdRng::seed_from_u64(77 + k as u64);
                acc += decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, 1, &mut ws)
                    .stats
                    .ped_calcs;
            }
            acc
        }));
    }

    for (name, workers) in [("stream_2w", 2usize), ("stream_4w", 4)] {
        let mut sc = StreamConfig::new(4);
        sc.workers = workers;
        sc.capacity = 8;
        let stream = FrameStream::new(cfg, det, sc);
        out.push(measure_mode(name, samples, STREAM_FRAMES_PER_SAMPLE, || {
            drive_stream(&stream, &ch, snr_db, STREAM_FRAMES_PER_SAMPLE)
        }));
    }
    out
}

/// Absolute headroom over the baseline's adaptive miss rate before the
/// soft storm gate trips: miss rates move with runner load in ways the
/// ratio trick cannot cancel, so this gate catches "the control plane
/// stopped helping", not single-digit-percent drift.
const STORM_MISS_HEADROOM: f64 = 0.25;

/// What the `deadline_storm` mode measured, ready to render and gate.
struct StormGateResult {
    serial_frame_ms: f64,
    floor_frame_ms: f64,
    deadline_ms: f64,
    static_miss_rate: f64,
    adaptive_miss_rate: f64,
    static_misses: u64,
    adaptive_misses: u64,
    submitted: u64,
    tier_admissions: [u64; DetectorTier::COUNT],
    drain_degraded: bool,
    drain_recovered: bool,
}

/// `deadline_storm` mode: calibrate a machine-relative deadline from the
/// serial sphere per-frame time, then run the storm comparison and the
/// drain-recovery pass from `gs-sim`.
fn run_storm_gate(samples: usize) -> StormGateResult {
    // The 64-subcarrier 4×4 64-QAM shape of the other two modes, run at a
    // lower SNR: the sphere search deepens sharply there while the MMSE
    // floor's cost is SNR-independent, so the sphere/MMSE per-frame gap —
    // the corridor the calibrated deadline sits in — is wide enough to
    // separate the two pipelines cleanly.
    let (cfg, _, _) = scenario();
    let snr_db = presets::STORM_SNR_DB;
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: 64,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };

    let capacity = presets::STORM_CAPACITY;

    // Serial calibration on the storm's frame shape, one worker, recycled
    // workspace: the per-frame cost at the sphere ceiling and at the MMSE
    // floor. Deadlines are stamped at submission, so under saturation a
    // frame's latency is roughly the slot-pool depth times the per-frame
    // service time; the deadline goes at the *geometric mean* of the two
    // tiers' projected latencies — above what the floor can sustain,
    // below what sphere-only can — and, being derived from in-process
    // measurements, lands in that corridor on any silicon.
    let ch = model.realize(&mut StdRng::seed_from_u64(2014));
    let mut ws = FrameWorkspace::new();
    let serial_frame = |det: &dyn Fn(&mut FrameWorkspace) -> u64, ws: &mut FrameWorkspace| {
        measure_mode("calibration", samples, 4, || {
            let mut acc = 0u64;
            for _ in 0..4 {
                acc += det(ws);
            }
            acc
        })
        .mean_ms
    };
    let sphere = geosphere_decoder();
    let serial_frame_ms = serial_frame(
        &|ws| {
            let mut rng = StdRng::seed_from_u64(2014);
            decode_frame_batched_into(&cfg, &ch, &sphere, snr_db, &mut rng, 1, ws).stats.ped_calcs
        },
        &mut ws,
    );
    let mmse = MmseDetector::new(noise_variance_for_snr_db(snr_db));
    let floor_frame_ms = serial_frame(
        &|ws| {
            let mut rng = StdRng::seed_from_u64(2014);
            decode_frame_batched_into(&cfg, &ch, &mmse, snr_db, &mut rng, 1, ws).stats.ped_calcs
        },
        &mut ws,
    );

    let latency_ms = capacity as f64 * (serial_frame_ms * floor_frame_ms).sqrt();
    let deadline = Duration::from_secs_f64((latency_ms / 1e3).max(0.25e-3));
    // The scenario shape (clients, frames, topology, SNR) is the shared
    // `presets::deadline_storm` definition — the campaign engine's
    // `campaign_storm` scenario is the same storm under a pinned tier.
    let storm = presets::deadline_storm(deadline, 2014);

    let cmp = run_deadline_storm(&cfg, &model, &storm);
    // Idle > the control plane's one-second miss window so storm misses
    // age out; 16 trickle frames cover two dwell periods of climbing.
    let drain = run_drain_recovery(&cfg, &model, &storm, Duration::from_millis(1200), 16);

    StormGateResult {
        serial_frame_ms,
        floor_frame_ms,
        deadline_ms: deadline.as_secs_f64() * 1e3,
        static_miss_rate: cmp.static_miss_rate(),
        adaptive_miss_rate: cmp.adaptive_miss_rate(),
        static_misses: cmp.static_sphere.deadline_misses,
        adaptive_misses: cmp.adaptive.deadline_misses,
        submitted: cmp.adaptive.submitted,
        tier_admissions: cmp.adaptive_tier_admissions,
        drain_degraded: drain.degraded,
        drain_recovered: drain.recovered,
    }
}

fn render_storm_json(r: &StormGateResult, samples: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"deadline_storm_4x4_qam64\",");
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"simd_tier\": \"{}\",", gs_linalg::simd::active_tier().name());
    let _ = writeln!(s, "  \"parallelism\": {},", machine_parallelism());
    let _ = writeln!(s, "  \"serial_frame_ms\": {:.6},", r.serial_frame_ms);
    let _ = writeln!(s, "  \"floor_frame_ms\": {:.6},", r.floor_frame_ms);
    let _ = writeln!(s, "  \"deadline_ms\": {:.6},", r.deadline_ms);
    let _ = writeln!(s, "  \"modes\": {{");
    let _ = writeln!(
        s,
        "    \"static_sphere\": {{\"miss_rate\": {:.6}, \"misses\": {}, \"submitted\": {}}},",
        r.static_miss_rate, r.static_misses, r.submitted
    );
    let _ = writeln!(
        s,
        "    \"adaptive\": {{\"miss_rate\": {:.6}, \"misses\": {}, \"submitted\": {}}}",
        r.adaptive_miss_rate, r.adaptive_misses, r.submitted
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(
        s,
        "  \"tier_admissions\": {{\"sphere\": {}, \"fsd\": {}, \"mmse\": {}}},",
        r.tier_admissions[0], r.tier_admissions[1], r.tier_admissions[2]
    );
    let _ = writeln!(
        s,
        "  \"drain\": {{\"degraded\": {}, \"recovered\": {}}}",
        r.drain_degraded, r.drain_recovered
    );
    let _ = writeln!(s, "}}");
    s
}

/// The number following `"mode": {"miss_rate":` in the storm JSON.
fn extract_miss_rate(json: &str, mode: &str) -> Option<f64> {
    let key = format!("\"{mode}\"");
    let after_mode = &json[json.find(&key)? + key.len()..];
    number_after(after_mode, "\"miss_rate\":")
}

/// Runs, renders, and gates the `deadline_storm` mode end to end.
fn storm_gate_main(out_path: &str, baseline_path: &str, samples: usize, write_baseline: bool) {
    let r = run_storm_gate(samples);
    let json = render_storm_json(&r, samples);
    println!(
        "deadline storm: sphere frame {:.3} ms, mmse frame {:.3} ms, deadline {:.3} ms",
        r.serial_frame_ms, r.floor_frame_ms, r.deadline_ms
    );
    println!(
        "static_sphere      miss rate {:.3}  ({}/{} frames)",
        r.static_miss_rate, r.static_misses, r.submitted
    );
    println!(
        "adaptive           miss rate {:.3}  ({}/{} frames, tiers sphere/fsd/mmse = {}/{}/{})",
        r.adaptive_miss_rate,
        r.adaptive_misses,
        r.submitted,
        r.tier_admissions[0],
        r.tier_admissions[1],
        r.tier_admissions[2]
    );
    println!("drain: degraded {} recovered {}", r.drain_degraded, r.drain_recovered);

    if write_baseline {
        std::fs::write(baseline_path, &json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }
    std::fs::write(out_path, &json).expect("write results");
    println!("results written to {out_path}");

    // Hard gates — deadline calibration makes these machine-independent.
    let mut failed = false;
    if r.adaptive_miss_rate >= r.static_miss_rate {
        eprintln!(
            "BENCH REGRESSION: adaptive miss rate {:.3} is not strictly below static \
             sphere's {:.3} — the control plane is not helping under the storm",
            r.adaptive_miss_rate, r.static_miss_rate
        );
        failed = true;
    }
    if !r.drain_degraded {
        eprintln!("BENCH REGRESSION: the storm never degraded the adaptive ladder");
        failed = true;
    }
    if !r.drain_recovered {
        eprintln!(
            "BENCH REGRESSION: the ladder did not climb back to the sphere tier after \
             the drain — degradation ratcheted"
        );
        failed = true;
    }

    // Soft gate against the committed baseline.
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("no committed baseline at {baseline_path}: {e}"));
    let base_adaptive = extract_miss_rate(&baseline, "adaptive")
        .unwrap_or_else(|| panic!("baseline is missing adaptive.miss_rate"));
    let limit = base_adaptive + STORM_MISS_HEADROOM;
    println!(
        "gate: adaptive miss rate {:.4} vs baseline {base_adaptive:.4} (limit {limit:.4})",
        r.adaptive_miss_rate
    );
    if r.adaptive_miss_rate > limit {
        eprintln!(
            "BENCH REGRESSION: adaptive miss rate {:.4} exceeds the baseline {base_adaptive:.4} \
             by more than the {STORM_MISS_HEADROOM} headroom",
            r.adaptive_miss_rate
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// The base seed of the CI campaign. Every scenario's seed derives from
/// this via splitmix64, so re-running any index locally reproduces its
/// report byte-for-byte.
const CAMPAIGN_BASE_SEED: u64 = 2014;

/// `campaign` mode: run the seeded scenario campaign at the fidelity the
/// `GS_SPEEDUP` env knob selects and gate hard on invariant violations.
/// The campaign is self-judging — every scenario carries its own
/// invariants (serial bit-identity, in-order delivery, exact miss and
/// refusal accounting) — so there is no timing baseline to compare
/// against and `--write-baseline` has nothing to write.
fn campaign_gate_main(out_path: &str) {
    // Lethal fault scenarios kill workers by panicking them on purpose;
    // keep those expected backtraces out of the gate's output while
    // leaving every other panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected worker fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let config = CampaignConfig::from_env(CAMPAIGN_BASE_SEED);
    println!(
        "campaign: {} scenarios x {} frames/client (speedup {}, base seed {})",
        config.scenarios, config.frames_per_client, config.speedup, config.base_seed
    );
    let report = run_campaign(&config);
    let json = report.render_json();
    std::fs::write(out_path, &json).expect("write campaign report");
    println!("results written to {out_path}");

    let offered: u64 = report.outcomes.iter().map(|o| o.offered).sum();
    let delivered: u64 = report.outcomes.iter().map(|o| o.delivered).sum();
    let faults = report.outcomes.iter().filter(|o| o.fault != "none").count();
    let fired = report.outcomes.iter().filter(|o| o.fault_fired).count();
    println!(
        "campaign: {} frames offered, {} delivered; {} scenarios carried a fault \
         ({} fired); checksum {:#018x}",
        offered,
        delivered,
        faults,
        fired,
        report.checksum()
    );

    let violations = report.total_violations();
    if violations > 0 {
        for o in report.outcomes.iter().filter(|o| !o.violations.is_empty()) {
            eprintln!(
                "CAMPAIGN VIOLATION: scenario {} (seed {:#018x}, {}):",
                o.index, o.seed, o.descriptor
            );
            for v in &o.violations {
                eprintln!("  - {v}");
            }
            eprintln!(
                "  reproduce with: gs_sim::run_scenario_by_index({}, {:#x}, {})",
                o.index, config.base_seed, config.frames_per_client
            );
        }
        eprintln!("CAMPAIGN FAILED: {violations} invariant violations");
        std::process::exit(1);
    }
    println!("gate: zero invariant violations across {} scenarios", report.outcomes.len());
}

/// How far `gs_windowed_frames_per_sec` may sit from the measured
/// delivered rate before the `metrics` gate trips.
const METRICS_RATE_TOLERANCE: f64 = 0.10;
/// The historic ring capacity the windowed rate used to clamp at; the
/// anti-clamp assertion only arms when the pipeline measurably exceeds it
/// with margin, so a slow single-core runner cannot trip it spuriously.
const LEGACY_WINDOW_EVENTS: f64 = 128.0;

/// `metrics` mode: saturate a stream while scraping its live endpoint,
/// then gate the scraped windowed throughput against the measured one.
fn metrics_gate_main(out_path: &str) {
    use gs_telemetry::{assert_counters_monotone, lint_exposition, scrape, MetricsServer};

    let (cfg, snr_db, ch) = scenario();
    let ch = Arc::new(ch);
    let mut sc = StreamConfig::new(4);
    sc.workers = 4;
    sc.capacity = 8;
    let stream = Arc::new(FrameStream::new(cfg, geosphere_decoder(), sc));
    let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&stream)).expect("bind endpoint");

    // Saturating driver, same admit-until-refused discipline as
    // `drive_stream` but time-bounded: runs until told to stop, then
    // drains its tail so the stream ends idle.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver = {
        let (stream, ch, stop) = (Arc::clone(&stream), Arc::clone(&ch), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut submitted = 0usize;
            let mut received = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let f =
                    UplinkFrame::new(submitted % 4, Arc::clone(&ch), snr_db, 77 + submitted as u64);
                if stream.try_submit(f).is_ok() {
                    submitted += 1;
                    continue;
                }
                std::hint::black_box(
                    stream.recv().expect("stream died mid-scrape").outcome().stats.ped_calcs,
                );
                received += 1;
            }
            while received < submitted {
                std::hint::black_box(
                    stream.recv().expect("stream died mid-drain").outcome().stats.ped_calcs,
                );
                received += 1;
            }
        })
    };

    // Let the pipeline reach steady state, then bracket one second with
    // two scrapes. Rates come from the endpoint itself (Δcompleted over
    // Δuptime), so no host clock enters the comparison.
    std::thread::sleep(Duration::from_millis(700));
    let first = scrape(server.addr(), "/metrics").expect("scrape #1");
    let first = lint_exposition(&first).expect("scrape #1 lints clean");
    std::thread::sleep(Duration::from_millis(1000));
    let second = scrape(server.addr(), "/metrics").expect("scrape #2");
    let second = lint_exposition(&second).expect("scrape #2 lints clean");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    driver.join().expect("driver thread panicked");

    let monotone = assert_counters_monotone(&first, &second).expect("counters monotone");
    let value = |expo: &gs_telemetry::Exposition, name: &str| -> f64 {
        expo.value(name, &[]).unwrap_or_else(|| panic!("series {name} missing"))
    };
    let delta_completed =
        value(&second, "gs_frames_completed_total") - value(&first, "gs_frames_completed_total");
    let delta_secs = value(&second, "gs_uptime_seconds") - value(&first, "gs_uptime_seconds");
    assert!(delta_secs > 0.5, "scrapes must bracket a real interval, got {delta_secs}s");
    let measured_fps = delta_completed / delta_secs;
    let windowed_fps = value(&second, "gs_windowed_frames_per_sec");

    // Histogram summaries for the JSON artifact, merged across lanes.
    let stats = stream.stats();
    let mut latency = gs_prof::hist::HistogramSnapshot::empty();
    for h in &stats.latency_per_client {
        latency.merge(h);
    }
    let mut queue_wait = gs_prof::hist::HistogramSnapshot::empty();
    for h in &stats.queue_wait_per_shard {
        queue_wait.merge(h);
    }

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"metrics_endpoint_4x4_qam64_64sc\",");
    let _ = writeln!(s, "  \"simd_tier\": \"{}\",", gs_linalg::simd::active_tier().name());
    let _ = writeln!(s, "  \"parallelism\": {},", machine_parallelism());
    let _ = writeln!(s, "  \"measured_fps\": {measured_fps:.3},");
    let _ = writeln!(s, "  \"windowed_fps\": {windowed_fps:.3},");
    let _ = writeln!(s, "  \"window_ratio\": {:.4},", windowed_fps / measured_fps);
    let _ = writeln!(s, "  \"lint_samples\": {},", second.samples.len());
    let _ = writeln!(s, "  \"monotone_counter_series\": {monotone},");
    let _ = writeln!(s, "  \"completed\": {},", stats.completed);
    let _ = writeln!(s, "  \"deadline_misses\": {},", stats.deadline_misses);
    let secs = |ns: u64| ns as f64 / 1e9;
    let mut hist_json = |name: &str, h: &gs_prof::hist::HistogramSnapshot, comma: &str| {
        let _ = writeln!(
            s,
            "  \"{name}\": {{\"count\": {}, \"p50_s\": {:.6}, \"p90_s\": {:.6}, \
             \"p99_s\": {:.6}, \"max_s\": {:.6}, \"mean_s\": {:.6}}}{comma}",
            h.count(),
            secs(h.quantile(0.5)),
            secs(h.quantile(0.9)),
            secs(h.quantile(0.99)),
            secs(h.max()),
            h.mean() / 1e9,
        );
    };
    hist_json("submit_delivery_latency", &latency, ",");
    hist_json("shard_queue_wait", &queue_wait, ",");
    hist_json("deadline_slack", &stats.deadline_slack, ",");
    hist_json("deadline_lateness", &stats.deadline_lateness, "");
    let _ = writeln!(s, "}}");
    std::fs::write(out_path, &s).expect("write results");

    println!(
        "metrics endpoint: measured {measured_fps:.1} fps, windowed {windowed_fps:.1} fps, \
         latency p50 {:.3} ms p99 {:.3} ms, queue wait p99 {:.3} ms",
        secs(latency.quantile(0.5)) * 1e3,
        secs(latency.quantile(0.99)) * 1e3,
        secs(queue_wait.quantile(0.99)) * 1e3,
    );
    println!("lint ok: {} samples, {monotone} counter series monotone", second.samples.len());
    println!("results written to {out_path}");

    let mut failed = false;
    let ratio = windowed_fps / measured_fps;
    println!(
        "gate: windowed/measured ratio {ratio:.4} must stay within \
         {METRICS_RATE_TOLERANCE} of 1.0"
    );
    if !(1.0 - METRICS_RATE_TOLERANCE..=1.0 + METRICS_RATE_TOLERANCE).contains(&ratio) {
        eprintln!(
            "BENCH REGRESSION: windowed rate {windowed_fps:.1} fps disagrees with the \
             measured {measured_fps:.1} fps by more than {:.0}%",
            METRICS_RATE_TOLERANCE * 100.0
        );
        failed = true;
    }
    // The anti-clamp check: only meaningful when this machine actually
    // pushes past the historic ring capacity with margin.
    if measured_fps > LEGACY_WINDOW_EVENTS * 1.25 && windowed_fps <= LEGACY_WINDOW_EVENTS {
        eprintln!(
            "BENCH REGRESSION: windowed rate {windowed_fps:.1} fps is clamped at the \
             historic {LEGACY_WINDOW_EVENTS}-event ring capacity while the pipeline \
             sustains {measured_fps:.1} fps"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Allowed armed-over-disarmed per-frame-time ratio in `trace` mode:
/// the flight recorder may cost at most 5% of sustained throughput.
const TRACE_MAX_OVERHEAD_RATIO: f64 = 1.05;

/// `trace` mode: sustained streaming per-frame time with the flight
/// recorder disarmed vs armed, measured back to back in one process so
/// the hardware term cancels. Hard gate, no committed baseline.
fn trace_gate_main(out_path: &str, samples: usize) {
    use gs_prof::trace as gtrace;

    let (cfg, snr_db, ch) = scenario();
    let ch = Arc::new(ch);
    let det = geosphere_decoder();
    let mut results = Vec::new();
    for (name, armed) in [("disarmed", false), ("armed", true)] {
        gtrace::set_armed(armed);
        let mut sc = StreamConfig::new(4);
        sc.workers = 4;
        sc.capacity = 8;
        let stream = FrameStream::new(cfg, det, sc);
        results.push(measure_mode(name, samples, STREAM_FRAMES_PER_SAMPLE, || {
            drive_stream(&stream, &ch, snr_db, STREAM_FRAMES_PER_SAMPLE)
        }));
    }
    gtrace::set_armed(true);

    let min_of = |mode: &str| -> f64 {
        results.iter().find(|r| r.name == mode).map(|r| r.min_ms).expect("mode measured")
    };
    let ratio = min_of("armed") / min_of("disarmed");

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"trace_overhead_4x4_qam64_64sc\",");
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"simd_tier\": \"{}\",", gs_linalg::simd::active_tier().name());
    let _ = writeln!(s, "  \"parallelism\": {},", machine_parallelism());
    let _ = writeln!(s, "  \"recorder_compiled_in\": {},", gtrace::recording_enabled());
    let _ = writeln!(s, "  \"modes\": {{");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    \"{}\": {{\"mean_ms\": {:.6}, \"min_ms\": {:.6}}}{comma}",
            r.name, r.mean_ms, r.min_ms
        );
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"armed_over_disarmed_min\": {ratio:.4}");
    let _ = writeln!(s, "}}");
    std::fs::write(out_path, &s).expect("write results");

    for r in &results {
        println!("{:<18} mean {:8.3} ms   min {:8.3} ms", r.name, r.mean_ms, r.min_ms);
    }
    if !gtrace::recording_enabled() {
        println!("recorder compiled out (rebuild with --features trace to measure it live)");
    }
    println!("results written to {out_path}");
    println!(
        "gate: armed/disarmed min ratio {ratio:.4} must stay below {TRACE_MAX_OVERHEAD_RATIO}"
    );
    if ratio > TRACE_MAX_OVERHEAD_RATIO {
        eprintln!(
            "BENCH REGRESSION: the armed flight recorder costs {:.1}% of sustained \
             streaming throughput (limit {:.0}%)",
            (ratio - 1.0) * 100.0,
            (TRACE_MAX_OVERHEAD_RATIO - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}

fn render_json(
    results: &[ModeResult],
    bench: &str,
    samples: usize,
    stage_profile: Option<&str>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"{bench}\",");
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"simd_tier\": \"{}\",", gs_linalg::simd::active_tier().name());
    let _ = writeln!(s, "  \"parallelism\": {},", machine_parallelism());
    let modes_comma = if stage_profile.is_some() { "," } else { "" };
    let _ = writeln!(s, "  \"modes\": {{");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    \"{}\": {{\"mean_ms\": {:.6}, \"min_ms\": {:.6}}}{comma}",
            r.name, r.mean_ms, r.min_ms
        );
    }
    let _ = writeln!(s, "  }}{modes_comma}");
    if let Some(frag) = stage_profile {
        s.push_str(frag);
    }
    let _ = writeln!(s, "}}");
    s
}

/// How many single-worker frames the profiled bracket decodes. Enough
/// that per-frame attribution is stable; small enough to add <1 s.
const PROFILE_FRAMES: usize = 16;

/// Decode `PROFILE_FRAMES` frames with one worker between two profiler
/// snapshots; returns the bracketed per-stage delta and the wall-clock
/// envelope in seconds. The single warmup frame before the bracket grows
/// every buffer and registers the thread tables, so the measured frames
/// reflect the steady state.
fn profile_frames() -> (gs_prof::StageProfile, f64) {
    let (cfg, snr_db, ch) = scenario();
    let det = geosphere_decoder();
    let mut ws = FrameWorkspace::new();
    let decode = |seed: u64, ws: &mut FrameWorkspace| {
        let mut rng = StdRng::seed_from_u64(seed);
        decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, 1, ws).stats.ped_calcs
    };
    std::hint::black_box(decode(77, &mut ws));
    let before = gs_prof::snapshot();
    let t0 = Instant::now();
    for k in 0..PROFILE_FRAMES {
        std::hint::black_box(decode(77 + k as u64, &mut ws));
    }
    let wall = t0.elapsed().as_secs_f64();
    (gs_prof::snapshot().delta(&before), wall)
}

/// Print the per-stage table to stdout and return the `"stage_profile"`
/// JSON fragment for [`render_json`]. Cycles are self-time (scopes nest
/// without double-counting), so the `pct` column partitions the table
/// total and `coverage` is table-total ÷ wall-clock — the fraction of
/// frame time the taxonomy reaches.
fn dump_stage_profile(p: &gs_prof::StageProfile, wall_secs: f64) -> String {
    let tps = gs_prof::ticks_per_sec();
    let frames = PROFILE_FRAMES as f64;
    let total = p.total_cycles() as f64;
    let coverage = if wall_secs > 0.0 { (total / tps) / wall_secs } else { 0.0 };
    println!();
    println!(
        "stage profile ({PROFILE_FRAMES} frames, 1 worker, self-time; tick clock {:.2} GHz):",
        tps / 1e9
    );
    println!(
        "  {:<13} {:>9} {:>12} {:>12} {:>6}",
        "stage", "ms/frame", "invocations", "bytes", "pct"
    );
    for r in p.stages.iter() {
        if r.cycles == 0 && r.invocations == 0 && r.bytes == 0 {
            continue;
        }
        println!(
            "  {:<13} {:>9.4} {:>12} {:>12} {:>5.1}%",
            r.stage.name(),
            (r.cycles as f64 / tps) * 1e3 / frames,
            r.invocations,
            r.bytes,
            if total > 0.0 { 100.0 * r.cycles as f64 / total } else { 0.0 },
        );
    }
    let top = p.top_stage().map(|s| s.name()).unwrap_or("none");
    println!(
        "  coverage {:.1}% of {:.3} ms/frame wall; top stage: {top}",
        coverage * 100.0,
        wall_secs * 1e3 / frames
    );

    let mut s = String::new();
    let _ = writeln!(s, "  \"stage_profile\": {{");
    let _ = writeln!(s, "    \"frames\": {PROFILE_FRAMES},");
    let _ = writeln!(s, "    \"ticks_per_sec\": {tps:.0},");
    let _ = writeln!(s, "    \"wall_ms_per_frame\": {:.6},", wall_secs * 1e3 / frames);
    let _ = writeln!(s, "    \"coverage\": {coverage:.4},");
    let _ = writeln!(s, "    \"top_stage\": \"{top}\",");
    let _ = writeln!(s, "    \"stages\": {{");
    for (k, r) in p.stages.iter().enumerate() {
        let comma = if k + 1 == p.stages.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      \"{}\": {{\"cycles\": {}, \"invocations\": {}, \"bytes\": {}}}{comma}",
            r.stage.name(),
            r.cycles,
            r.invocations,
            r.bytes
        );
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }}");
    s
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Minimal extractors for our own JSON format — no general JSON parser
/// needed (or available offline).
fn number_after(json: &str, key: &str) -> Option<f64> {
    let after_field = &json[json.find(key)? + key.len()..];
    let num: String = after_field
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// The number following `"mode" : {... "field":`.
fn extract_field(json: &str, mode: &str, field: &str) -> Option<f64> {
    let key = format!("\"{mode}\"");
    let after_mode = &json[json.find(&key)? + key.len()..];
    number_after(after_mode, &format!("\"{field}\":"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|p| args.get(p + 1).cloned())
    };
    let mode = flag_value("--mode").unwrap_or_else(|| "frame_decode".into());
    let samples_flag = flag_value("--samples").and_then(|v| v.parse().ok());
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    // The storm mode gates miss rates, not timing ratios — it has its own
    // render/gate path.
    if mode == "deadline_storm" {
        let out = flag_value("--out").unwrap_or_else(|| "BENCH_pr6.json".into());
        let baseline = flag_value("--baseline")
            .unwrap_or_else(|| "crates/bench/baselines/pr6_deadline_storm.json".into());
        storm_gate_main(&out, &baseline, samples_flag.unwrap_or(12), write_baseline);
        return;
    }
    // The metrics mode gates the endpoint against an in-run measurement —
    // self-relative, so it takes no baseline (and `--write-baseline` has
    // nothing to write).
    if mode == "metrics" {
        let out = flag_value("--out").unwrap_or_else(|| "BENCH_pr8.json".into());
        metrics_gate_main(&out);
        return;
    }
    // The campaign mode gates on seeded-scenario invariants (bit-identity,
    // ordering, miss accounting) — deterministic, so no baseline either.
    if mode == "campaign" {
        let out = flag_value("--out").unwrap_or_else(|| "CAMPAIGN_pr9.json".into());
        campaign_gate_main(&out);
        return;
    }
    // The trace mode gates the recorder against an in-process disarmed
    // run — self-relative, no baseline.
    if mode == "trace" {
        let out = flag_value("--out").unwrap_or_else(|| "BENCH_pr10.json".into());
        trace_gate_main(&out, samples_flag.unwrap_or(12));
        return;
    }

    // Per-mode defaults: (bench label, out, baseline, gated mode,
    // in-run reference mode — the denominator cancelling the hardware
    // term: "serial" for the PR 4/5 gates, "single_sym" for PR 7's).
    let (bench, default_out, default_baseline, gated_mode, reference_mode) = match mode.as_str() {
        "frame_decode" => (
            "frame_decode_4x4_qam64_64sc",
            "BENCH_pr4.json",
            "crates/bench/baselines/pr4_frame_decode.json",
            "batched_1w",
            "serial",
        ),
        "frame_stream" => (
            "frame_stream_4x4_qam64_64sc",
            "BENCH_pr5.json",
            "crates/bench/baselines/pr5_frame_stream.json",
            "stream_4w",
            "serial",
        ),
        "multi_symbol" => (
            "multi_symbol_4x4_qam64_64sc",
            "BENCH_pr7.json",
            "crates/bench/baselines/pr7_multi_symbol.json",
            "multi_sym",
            "single_sym",
        ),
        other => {
            panic!(
                "unknown --mode {other:?} (expected frame_decode|frame_stream|\
                 multi_symbol|deadline_storm|metrics|campaign|trace)"
            )
        }
    };
    let out_path = flag_value("--out").unwrap_or_else(|| default_out.into());
    let baseline_path = flag_value("--baseline").unwrap_or_else(|| default_baseline.into());
    let samples: usize = samples_flag.unwrap_or(12);

    let results = match mode.as_str() {
        "frame_stream" => run_stream(samples),
        "multi_symbol" => run_multi(samples),
        _ => run_all(samples),
    };
    // The per-stage attribution table rides along whenever the binary was
    // built with `--features profile`; without it the instrumentation is
    // compiled out and there is nothing to dump.
    let stage_fragment = if gs_prof::enabled() {
        let (profile, wall) = profile_frames();
        Some(dump_stage_profile(&profile, wall))
    } else {
        println!("stage profile: compiled out (rebuild with --features profile to dump it)");
        None
    };
    let json = render_json(&results, bench, samples, stage_fragment.as_deref());
    for r in &results {
        println!("{:<18} mean {:8.3} ms   min {:8.3} ms", r.name, r.mean_ms, r.min_ms);
    }
    if mode == "frame_stream" {
        let mean_of = |mode: &str| -> f64 {
            results.iter().find(|r| r.name == mode).map(|r| r.mean_ms).expect("mode measured")
        };
        println!(
            "sustained throughput: serial {:.1} fps, stream_4w {:.1} fps ({:.2}x)",
            1e3 / mean_of("serial"),
            1e3 / mean_of("stream_4w"),
            mean_of("serial") / mean_of("stream_4w"),
        );
    }

    if write_baseline {
        std::fs::write(&baseline_path, &json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }

    std::fs::write(&out_path, &json).expect("write results");
    println!("results written to {out_path}");

    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("no committed baseline at {baseline_path}: {e}"));

    // The frame_stream ratio is *not* core-count independent: stream_4w
    // scales with real cores while serial does not, so the gate only
    // means something against a baseline from a machine with the same
    // available parallelism. On a mismatch, record the numbers but skip
    // the pass/fail judgement — a green gate must never come from
    // comparing a 1-core baseline on a 4-core runner (or vice versa).
    // frame_decode gates 1-worker vs 1-worker and stays unconditional.
    let mean_of = |results: &[ModeResult], mode: &str| -> f64 {
        results.iter().find(|r| r.name == mode).map(|r| r.mean_ms).expect("mode measured")
    };
    if mode == "frame_stream" {
        let base_par = number_after(&baseline, "\"parallelism\":").map(|p| p as usize);
        let cur_par = machine_parallelism();
        if base_par != Some(cur_par) {
            // The tight relative gate is disarmed, but a core-count
            // independent bound still holds on ANY machine: adding cores
            // can only help the stream, so its per-frame time must never
            // exceed serial by more than the single-core pipeline
            // overhead plus headroom. This keeps a catastrophic streaming
            // regression from sailing through green on a runner whose
            // core count doesn't match the committed baseline.
            const STREAM_OVERHEAD_CEILING: f64 = 1.25;
            let cur_ratio = mean_of(&results, gated_mode) / mean_of(&results, reference_mode);
            println!(
                "tight gate skipped: baseline parallelism {} vs this machine's {cur_par} — \
                 the stream/serial ratio is only comparable on matching core counts; \
                 refresh with --write-baseline on a machine like the CI runner to arm it. \
                 Applying the universal ceiling instead: ratio {cur_ratio:.4} must stay \
                 below {STREAM_OVERHEAD_CEILING}",
                base_par.map_or("unrecorded".into(), |p| p.to_string()),
            );
            if cur_ratio > STREAM_OVERHEAD_CEILING {
                eprintln!(
                    "BENCH REGRESSION: {gated_mode}/{reference_mode} ratio {cur_ratio:.4} \
                     exceeds the core-count-independent ceiling {STREAM_OVERHEAD_CEILING}"
                );
                std::process::exit(1);
            }
            return;
        }
    }
    // The multi_symbol gate compares on per-mode minima instead of the
    // trimmed means the other modes use. Its ratio has two in-process
    // timing measurements, each carrying an independent co-tenancy noise
    // tail; at a 10% tolerance the mean-based ratio flakes on busy
    // runners. Scheduler interference is strictly additive, so the
    // minimum over the sample set is the stable estimator of the
    // undisturbed frame time and holds the ratio steady to a few
    // percent. A slightly wider tolerance absorbs what two-sided min
    // jitter remains.
    let (metric_field, tolerance) = if mode == "multi_symbol" {
        ("min_ms", MULTI_SYMBOL_MAX_REGRESSION)
    } else {
        ("mean_ms", MAX_REGRESSION)
    };
    let metric_of = |results: &[ModeResult], mode: &str| -> f64 {
        results
            .iter()
            .find(|r| r.name == mode)
            .map(|r| if metric_field == "min_ms" { r.min_ms } else { r.mean_ms })
            .expect("mode measured")
    };
    let base_gated = extract_field(&baseline, gated_mode, metric_field)
        .unwrap_or_else(|| panic!("baseline is missing {gated_mode}.{metric_field}"));
    let base_ref = extract_field(&baseline, reference_mode, metric_field)
        .unwrap_or_else(|| panic!("baseline is missing {reference_mode}.{metric_field}"));
    let base_ratio = base_gated / base_ref;
    let cur_ratio = metric_of(&results, gated_mode) / metric_of(&results, reference_mode);

    let limit = base_ratio * (1.0 + tolerance);
    println!(
        "gate: {gated_mode}/{reference_mode} ratio {cur_ratio:.4} vs baseline \
         {base_ratio:.4} (limit {limit:.4})"
    );
    if cur_ratio > limit {
        eprintln!(
            "BENCH REGRESSION: {gated_mode}/{reference_mode} ratio {cur_ratio:.4} exceeds \
             the baseline ratio {base_ratio:.4} by more than {:.0}%",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    if cur_ratio < base_ratio * (1.0 - tolerance) {
        println!(
            "note: {gated_mode} is now >{:.0}% faster relative to {reference_mode} than \
             the baseline — consider refreshing it with --write-baseline",
            tolerance * 100.0
        );
    }
}
