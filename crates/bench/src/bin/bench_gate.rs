//! The CI bench-regression gate for the `frame_decode` hot path.
//!
//! Times the same scenario as the `decode_throughput/frame_decode` bench —
//! one 64-subcarrier 4×4 64-QAM uplink frame at 28 dB through the
//! Geosphere decoder — across the decode modes (serial reference, batched
//! at several worker counts, and the steady-state reused-workspace path),
//! then:
//!
//! 1. writes the results as JSON (`BENCH_pr4.json` by default, uploaded as
//!    a CI artifact), one `{mean_ms, min_ms}` entry per mode, and
//! 2. gates the `batched_1w` mean against the committed baseline
//!    (`crates/bench/baselines/pr4_frame_decode.json`), **failing** (exit
//!    code 1) on a regression of more than 10%.
//!
//! The gate is **machine-relative**: what is compared is the ratio
//! `batched_1w / serial`, both measured in the same process, against the
//! same ratio from the baseline file. Absolute milliseconds vary with the
//! runner's silicon (ephemeral CI machines span CPU generations); the
//! ratio cancels the hardware term, so the gate trips on code regressions
//! in the batched path rather than on runner lottery. The absolute means
//! are still recorded in the JSON for human inspection.
//!
//! The mean is trimmed (middle half of the sorted samples) so one noisy
//! scheduler hiccup on a shared runner cannot fail the gate by itself;
//! an improvement beyond the baseline prints a hint to refresh it.
//!
//! Flags: `--out <path>`, `--baseline <path>`, `--samples <n>`,
//! `--write-baseline` (regenerate the committed baseline instead of
//! gating — run on a quiet machine).

use geosphere_core::geosphere_decoder;
use gs_channel::{ChannelModel, SelectiveRayleighChannel};
use gs_modulation::Constellation;
use gs_phy::{
    decode_frame_batched, decode_frame_batched_into, uplink_frame, FrameWorkspace, PhyConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Allowed regression of the gated ratio vs the baseline's ratio.
const MAX_REGRESSION: f64 = 0.10;
/// The mode the gate compares (the steady single-worker batched decode).
const GATED_MODE: &str = "batched_1w";
/// The in-run reference that cancels the hardware term.
const REFERENCE_MODE: &str = "serial";

struct ModeResult {
    name: &'static str,
    mean_ms: f64,
    min_ms: f64,
}

/// Trimmed mean (middle half) and min of raw per-frame times, in ms.
fn summarize(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let lo = samples.len() / 4;
    let hi = samples.len() - lo;
    let mid = &samples[lo..hi];
    (mid.iter().sum::<f64>() / mid.len() as f64 * 1e3, min * 1e3)
}

fn time_mode(samples: usize, mut f: impl FnMut() -> u64) -> (f64, f64) {
    // Two warmup frames grow every workspace/pool buffer before timing.
    std::hint::black_box(f());
    std::hint::black_box(f());
    let raw: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    summarize(raw)
}

fn run_all(samples: usize) -> Vec<ModeResult> {
    let cfg =
        PhyConfig { n_subcarriers: 64, payload_bits: 2048, ..PhyConfig::new(Constellation::Qam64) };
    let snr_db = 28.0;
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: 64,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(2014));
    let det = geosphere_decoder();

    let mut out = Vec::new();
    let (mean, min) = time_mode(samples, || {
        let mut rng = StdRng::seed_from_u64(77);
        uplink_frame(&cfg, &ch, &det, snr_db, &mut rng).stats.ped_calcs
    });
    out.push(ModeResult { name: "serial", mean_ms: mean, min_ms: min });

    for (name, workers) in [("batched_1w", 1usize), ("batched_2w", 2), ("batched_4w", 4)] {
        let (mean, min) = time_mode(samples, || {
            let mut rng = StdRng::seed_from_u64(77);
            decode_frame_batched(&cfg, &ch, &det, snr_db, &mut rng, workers).stats.ped_calcs
        });
        out.push(ModeResult { name, mean_ms: mean, min_ms: min });
    }

    for (name, workers) in [("batched_into_1w", 1usize), ("batched_into_4w", 4)] {
        let mut ws = FrameWorkspace::new();
        let (mean, min) = time_mode(samples, || {
            let mut rng = StdRng::seed_from_u64(77);
            decode_frame_batched_into(&cfg, &ch, &det, snr_db, &mut rng, workers, &mut ws)
                .stats
                .ped_calcs
        });
        out.push(ModeResult { name, mean_ms: mean, min_ms: min });
    }
    out
}

fn render_json(results: &[ModeResult], samples: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"frame_decode_4x4_qam64_64sc\",");
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"simd_tier\": \"{}\",", gs_linalg::simd::active_tier().name());
    let _ = writeln!(s, "  \"modes\": {{");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    \"{}\": {{\"mean_ms\": {:.6}, \"min_ms\": {:.6}}}{comma}",
            r.name, r.mean_ms, r.min_ms
        );
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

/// Minimal extractor for our own JSON format: the number following
/// `"mode" : {"mean_ms":` — no general JSON parser needed (or available
/// offline).
fn extract_mean(json: &str, mode: &str) -> Option<f64> {
    let key = format!("\"{mode}\"");
    let after_mode = &json[json.find(&key)? + key.len()..];
    let after_field = &after_mode[after_mode.find("\"mean_ms\":")? + "\"mean_ms\":".len()..];
    let num: String = after_field
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|p| args.get(p + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_pr4.json".into());
    let baseline_path = flag_value("--baseline")
        .unwrap_or_else(|| "crates/bench/baselines/pr4_frame_decode.json".into());
    let samples: usize = flag_value("--samples").and_then(|v| v.parse().ok()).unwrap_or(12);
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let results = run_all(samples);
    let json = render_json(&results, samples);
    for r in &results {
        println!("{:<18} mean {:8.3} ms   min {:8.3} ms", r.name, r.mean_ms, r.min_ms);
    }

    if write_baseline {
        std::fs::write(&baseline_path, &json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }

    std::fs::write(&out_path, &json).expect("write results");
    println!("results written to {out_path}");

    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("no committed baseline at {baseline_path}: {e}"));
    let mean_of = |results: &[ModeResult], mode: &str| -> f64 {
        results.iter().find(|r| r.name == mode).map(|r| r.mean_ms).expect("mode measured")
    };
    let base_gated = extract_mean(&baseline, GATED_MODE)
        .unwrap_or_else(|| panic!("baseline is missing {GATED_MODE}.mean_ms"));
    let base_ref = extract_mean(&baseline, REFERENCE_MODE)
        .unwrap_or_else(|| panic!("baseline is missing {REFERENCE_MODE}.mean_ms"));
    let base_ratio = base_gated / base_ref;
    let cur_ratio = mean_of(&results, GATED_MODE) / mean_of(&results, REFERENCE_MODE);

    let limit = base_ratio * (1.0 + MAX_REGRESSION);
    println!(
        "gate: {GATED_MODE}/{REFERENCE_MODE} ratio {cur_ratio:.4} vs baseline \
         {base_ratio:.4} (limit {limit:.4})"
    );
    if cur_ratio > limit {
        eprintln!(
            "BENCH REGRESSION: {GATED_MODE}/{REFERENCE_MODE} ratio {cur_ratio:.4} exceeds \
             the baseline ratio {base_ratio:.4} by more than {:.0}%",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    }
    if cur_ratio < base_ratio * (1.0 - MAX_REGRESSION) {
        println!(
            "note: {GATED_MODE} is now >{:.0}% faster relative to {REFERENCE_MODE} than \
             the baseline — consider refreshing it with --write-baseline",
            MAX_REGRESSION * 100.0
        );
    }
}
