//! Figure 11: testbed uplink throughput, zero-forcing vs Geosphere, for
//! {2×2, 2×4, 3×4, 4×4} client/antenna configurations at 15/20/25 dB.
//!
//! Expected shape (paper §5.2): Geosphere consistently ≥ ZF; gains up to
//! 47% at 2×2 and >2× at 4×4; gains grow with condition number and SNR.

use gs_bench::{params_from_args, rule};
use gs_channel::Testbed;
use gs_sim::{testbed_throughput, DetectorKind, PAPER_CONFIGS, PAPER_SNRS};

fn main() {
    let params = params_from_args();
    let tb = Testbed::office();

    println!("Figure 11 — Net uplink throughput (Mbps), zero-forcing vs Geosphere");
    rule(86);
    println!(
        "{:<16} {:>6} | {:>12} {:>12} {:>8} | {:>10}",
        "config", "SNR dB", "ZF Mbps", "Geo Mbps", "gain", "Geo const."
    );
    rule(86);
    for &(nc, na) in &PAPER_CONFIGS {
        for &snr in &PAPER_SNRS {
            let zf = testbed_throughput(&params, &tb, nc, na, snr, DetectorKind::Zf);
            let geo = testbed_throughput(&params, &tb, nc, na, snr, DetectorKind::Geosphere);
            let gain = if zf.throughput_mbps > 0.0 {
                geo.throughput_mbps / zf.throughput_mbps
            } else {
                f64::INFINITY
            };
            println!(
                "{:<16} {:>6.0} | {:>12.1} {:>12.1} {:>7.2}x | {:>10?}",
                format!("{nc}c x {na}a"),
                snr,
                zf.throughput_mbps,
                geo.throughput_mbps,
                gain,
                geo.constellation,
            );
        }
        rule(86);
    }
}
