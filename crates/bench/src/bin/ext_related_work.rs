//! Extension: quantitative comparison against the §6.1 related-work
//! decoder families the paper argues against — K-best, the
//! fixed-complexity SD, statistical pruning, and the condition-threshold
//! hybrid — on error rate AND complexity, side by side with Geosphere.
//!
//! Expected shape: the alternatives either lose ML optimality (K-best,
//! FSD, statistical pruning → symbol errors above Geosphere's) or add
//! machinery without saving anything (hybrid ≈ Geosphere, because
//! Geosphere's complexity already self-adjusts to conditioning).

use geosphere_core::{
    geosphere_decoder, FsdDetector, HybridDetector, KBestDetector, MimoDetector,
    StatisticalPruningDetector,
};
use gs_bench::{params_from_args, rule};
use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
use gs_modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let params = params_from_args();
    let snr_db = 22.0;
    let trials = 400 * params.frames_per_point;
    let c = Constellation::Qam64;
    let sigma2 = noise_variance_for_snr_db(snr_db);

    let detectors: Vec<Box<dyn MimoDetector>> = vec![
        Box::new(geosphere_decoder()),
        Box::new(KBestDetector::new(8)),
        Box::new(KBestDetector::new(16)),
        Box::new(FsdDetector::new()),
        Box::new(StatisticalPruningDetector::new(6.0, sigma2)),
        Box::new(HybridDetector::new(12.0)),
    ];
    let labels = [
        "Geosphere",
        "K-best (K=8)",
        "K-best (K=16)",
        "FSD (p=1)",
        "Stat. pruning β=6",
        "Hybrid κ²<12dB",
    ];

    println!("Related-work ablation — 4x4, 64-QAM, {snr_db} dB Rayleigh, {trials} vectors");
    rule(78);
    println!("{:<20} | {:>10} {:>12} {:>12}", "detector", "SER", "PED/vector", "nodes/vector");
    rule(78);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let pts = c.points();
    let mut errs = vec![0usize; detectors.len()];
    let mut peds = vec![0u64; detectors.len()];
    let mut nodes = vec![0u64; detectors.len()];
    for _ in 0..trials {
        let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
        let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = geosphere_core::apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(&mut rng, sigma2);
        }
        for (k, det) in detectors.iter().enumerate() {
            let d = det.detect(&h, &y, c);
            errs[k] += d.symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
            peds[k] += d.stats.ped_calcs;
            nodes[k] += d.stats.visited_nodes;
        }
    }
    for k in 0..detectors.len() {
        println!(
            "{:<20} | {:>10.4} {:>12.1} {:>12.1}",
            labels[k],
            errs[k] as f64 / (trials * 4) as f64,
            peds[k] as f64 / trials as f64,
            nodes[k] as f64 / trials as f64,
        );
    }
    rule(78);
    println!("Geosphere is the only entry that is simultaneously exact-ML and cheap.");
}
