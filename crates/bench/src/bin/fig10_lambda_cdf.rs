//! Figure 10: CDF of Λ (dB) — the worst per-user SNR degradation due to
//! zero-forcing noise amplification — across testbed links and subcarriers.
//!
//! The paper's reading: "zero-forcing will result in 30% of the MIMO
//! channels experiencing an SNR degradation of more than 5 dB, while 90% of
//! the channels will face such a degradation for 4×4 links"; and for 2
//! clients × 4 antennas "the maximum degradation … will be less than three
//! decibels for 90% of the channels".

use gs_bench::{params_from_args, rule};
use gs_channel::Testbed;
use gs_sim::{conditioning_cdfs, PAPER_CONFIGS};

fn main() {
    let params = params_from_args();
    let tb = Testbed::office();
    let max_links = 60;

    println!("Figure 10 — CDF of Lambda (dB), worst-user ZF SNR degradation");
    rule(72);
    println!(
        "{:>10} | {:>10} {:>10} {:>10} {:>10}",
        "CDF", "2c x 2a", "2c x 4a", "3c x 4a", "4c x 4a"
    );
    rule(72);

    let cdfs: Vec<_> = PAPER_CONFIGS
        .iter()
        .map(|&(nc, na)| conditioning_cdfs(&params, &tb, nc, na, max_links).1)
        .collect();

    for pct in [5, 10, 25, 50, 75, 90, 95] {
        let p = pct as f64 / 100.0;
        print!("{:>9}% |", pct);
        for cdf in &cdfs {
            print!(" {:>9.1}", cdf.quantile(p));
        }
        println!();
    }
    rule(72);
    println!("Fraction of links with Lambda > 5 dB (paper: ~30% for 2x2, ~90% for 4x4):");
    for (cdf, &(nc, na)) in cdfs.iter().zip(PAPER_CONFIGS.iter()) {
        println!("  {nc} clients x {na} AP antennas: {:.0}%", 100.0 * cdf.fraction_above(5.0));
    }
    println!(
        "2 clients x 4 antennas, 90th percentile (paper: < 3 dB): {:.1} dB",
        cdfs[1].quantile(0.9)
    );
}
