//! Figure 14: average partial-Euclidean-distance calculations per
//! subcarrier for ETH-SD vs Geosphere, over the same testbed operating
//! points as Figure 11.
//!
//! Expected shape: "Geosphere is consistently less computationally
//! demanding than ETH-SD, and the gains increase when SNR increases …
//! in the 25 dB range, our computational savings can be up to 63%."

use gs_bench::{params_from_args, rule};
use gs_channel::Testbed;
use gs_sim::{testbed_throughput, DetectorKind, PAPER_CONFIGS, PAPER_SNRS};

fn main() {
    let params = params_from_args();
    let tb = Testbed::office();

    println!("Figure 14 — Avg PED calculations per subcarrier, ETH-SD vs Geosphere");
    rule(90);
    println!(
        "{:<16} {:>6} | {:>12} {:>12} {:>9} | {:>12}",
        "config", "SNR dB", "ETH-SD", "Geosphere", "savings", "const."
    );
    rule(90);
    for &(nc, na) in &PAPER_CONFIGS {
        for &snr in &PAPER_SNRS {
            // Complexity corresponding to the Fig. 11 throughput runs: both
            // decoders are ML-equivalent, so they share the oracle
            // constellation choice.
            let eth = testbed_throughput(&params, &tb, nc, na, snr, DetectorKind::EthSd);
            let geo = testbed_throughput(&params, &tb, nc, na, snr, DetectorKind::Geosphere);
            let savings = 100.0 * (1.0 - geo.ped_per_subcarrier / eth.ped_per_subcarrier.max(1e-9));
            println!(
                "{:<16} {:>6.0} | {:>12.1} {:>12.1} {:>8.0}% | {:>12?}",
                format!("{nc}c x {na}a"),
                snr,
                eth.ped_per_subcarrier,
                geo.ped_per_subcarrier,
                savings,
                geo.constellation,
            );
        }
        rule(90);
    }
}
