//! Figure 12: testbed uplink throughput vs number of clients at a
//! four-antenna AP, 20 dB SNR, zero-forcing vs Geosphere.
//!
//! Expected shape: "Geosphere achieves linear gains in throughput with the
//! number of clients while zero-forcing does not." Also checks the paper's
//! TDMA question: Geosphere with 4 clients beats ZF with 3 (up to 36%).

use gs_bench::{params_from_args, rule};
use gs_channel::Testbed;
use gs_sim::{testbed_throughput, DetectorKind};

fn main() {
    let params = params_from_args();
    let tb = Testbed::office();
    let snr = 20.0;

    println!("Figure 12 — Throughput vs number of clients (4-antenna AP, 20 dB)");
    rule(70);
    println!("{:>8} | {:>12} {:>12} {:>8}", "clients", "ZF Mbps", "Geo Mbps", "gain");
    rule(70);
    let mut zf3 = 0.0;
    let mut geo4 = 0.0;
    for nc in 1..=4usize {
        let zf = testbed_throughput(&params, &tb, nc, 4, snr, DetectorKind::Zf);
        let geo = testbed_throughput(&params, &tb, nc, 4, snr, DetectorKind::Geosphere);
        if nc == 3 {
            zf3 = zf.throughput_mbps;
        }
        if nc == 4 {
            geo4 = geo.throughput_mbps;
        }
        let gain = if zf.throughput_mbps > 0.0 {
            geo.throughput_mbps / zf.throughput_mbps
        } else {
            f64::INFINITY
        };
        println!(
            "{:>8} | {:>12.1} {:>12.1} {:>7.2}x",
            nc, zf.throughput_mbps, geo.throughput_mbps, gain
        );
    }
    rule(70);
    println!(
        "Geosphere(4 clients) vs ZF(3 clients) — the TDMA question (paper: up to +36%): {:+.0}%",
        100.0 * (geo4 / zf3 - 1.0)
    );
}
