//! Figure 13: simulated uplink throughput at a ten-antenna AP over i.i.d.
//! Rayleigh fading at 20 dB, for zero-forcing, MMSE-SIC, and Geosphere,
//! as the number of clients grows from 2 to 10.
//!
//! Expected shape: all three track each other while clients ≪ antennas;
//! as the client count approaches the antenna count, MMSE-SIC beats ZF but
//! error propagation keeps it under Geosphere, which is "almost two times
//! faster for the 10×10 case".

use gs_bench::{arg_usize, params_from_args, rule};
use gs_sim::{rayleigh_throughput, DetectorKind};

fn main() {
    let params = params_from_args();
    let na = arg_usize("--antennas", 10);
    let snr = 20.0;

    println!("Figure 13 — Rayleigh channel, {na}-antenna AP, 20 dB");
    rule(78);
    println!(
        "{:>8} | {:>11} {:>11} {:>11} | {:>14}",
        "clients", "ZF Mbps", "SIC Mbps", "Geo Mbps", "Geo/ZF"
    );
    rule(78);
    for nc in (2..=na).step_by(2) {
        let zf = rayleigh_throughput(&params, nc, na, snr, DetectorKind::Zf);
        let sic = rayleigh_throughput(&params, nc, na, snr, DetectorKind::MmseSic);
        let geo = rayleigh_throughput(&params, nc, na, snr, DetectorKind::Geosphere);
        let gain = if zf.throughput_mbps > 0.0 {
            geo.throughput_mbps / zf.throughput_mbps
        } else {
            f64::INFINITY
        };
        println!(
            "{:>8} | {:>11.1} {:>11.1} {:>11.1} | {:>13.2}x",
            nc, zf.throughput_mbps, sic.throughput_mbps, geo.throughput_mbps, gain
        );
    }
    rule(78);
}
