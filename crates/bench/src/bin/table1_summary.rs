//! Table 1: the paper's summary of the three experiment families —
//! channel characterization (§5.1), throughput comparison (§5.2), and
//! computational complexity (§5.3) — regenerated from quick versions of
//! each underlying experiment.

use gs_bench::{params_from_args, rule};
use gs_channel::Testbed;
use gs_modulation::Constellation;
use gs_sim::{complexity_at_target_fer, conditioning_cdfs, testbed_throughput, DetectorKind};

fn main() {
    let params = params_from_args();
    let tb = Testbed::office();

    println!("Table 1 — Summary of major experimental results");
    rule(100);

    // Channel characterization (§5.1).
    let (k22, _) = conditioning_cdfs(&params, &tb, 2, 2, 40);
    let (k44, _) = conditioning_cdfs(&params, &tb, 4, 4, 40);
    println!(
        "Channel characterization (§5.1): {:.0}% of 2x2 and {:.0}% of 4x4 indoor MIMO channels\n  are poorly conditioned (kappa^2 > 10 dB). Paper: 60% and ~100%.",
        100.0 * k22.fraction_above(10.0),
        100.0 * k44.fraction_above(10.0)
    );
    rule(100);

    // Throughput comparison (§5.2).
    let zf22 = testbed_throughput(&params, &tb, 2, 2, 20.0, DetectorKind::Zf);
    let geo22 = testbed_throughput(&params, &tb, 2, 2, 20.0, DetectorKind::Geosphere);
    let zf44 = testbed_throughput(&params, &tb, 4, 4, 20.0, DetectorKind::Zf);
    let geo44 = testbed_throughput(&params, &tb, 4, 4, 20.0, DetectorKind::Geosphere);
    println!(
        "Throughput (§5.2): Geosphere/ZF gain = {:.2}x at 4x4, {:.2}x at 2x2 (20 dB).\n  Paper: 2x for 4x4, +47% for 2x2.",
        geo44.throughput_mbps / zf44.throughput_mbps.max(1e-9),
        geo22.throughput_mbps / zf22.throughput_mbps.max(1e-9),
    );
    rule(100);

    // Computational complexity (§5.3).
    let pts = complexity_at_target_fer(&params, None, 4, 4, Constellation::Qam256, 0.10);
    println!(
        "Complexity (§5.3): 256-QAM 4x4 Rayleigh at ~10% FER: Geosphere {:.1} vs ETH-SD {:.1}\n  PEDs/subcarrier ({:.0}% less). Paper: up to 70-81% less; ~order of magnitude overall.",
        pts[2].ped_per_subcarrier,
        pts[0].ped_per_subcarrier,
        100.0 * (1.0 - pts[2].ped_per_subcarrier / pts[0].ped_per_subcarrier.max(1e-9)),
    );
    rule(100);
}
