//! Extension (paper §7): soft-output Geosphere + soft Viterbi vs the hard
//! pipeline — FER at marginal SNRs and the complexity premium of
//! counter-hypothesis searches.

use geosphere_core::geosphere_decoder;
use gs_bench::{params_from_args, rule};
use gs_channel::{ChannelModel, RayleighChannel};
use gs_modulation::Constellation;
use gs_phy::{uplink_frame, uplink_frame_soft, PhyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = params_from_args();
    let cfg =
        PhyConfig { payload_bits: params.payload_bits, ..PhyConfig::new(Constellation::Qam16) };
    let model = RayleighChannel::new(4, 4);
    let trials = (8 * params.frames_per_point) as u64;

    println!("Soft vs hard decoding — 4x4, 16-QAM rate-1/2, Rayleigh, {trials} frames/point");
    rule(84);
    println!(
        "{:>8} | {:>10} {:>10} | {:>13} {:>13}",
        "SNR dB", "hard FER", "soft FER", "hard PED/sc", "soft PED/sc"
    );
    rule(84);
    for snr in [10.0, 12.0, 14.0, 16.0] {
        let mut hard_fail = 0usize;
        let mut soft_fail = 0usize;
        let (mut hp, mut hd, mut sp, mut sd) = (0u64, 0u64, 0u64, 0u64);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(params.seed * 1000 + t);
            let ch = model.realize(&mut rng);
            let hard = uplink_frame(&cfg, &ch, &geosphere_decoder(), snr, &mut rng);
            hard_fail += hard.client_ok.iter().filter(|&&ok| !ok).count();
            hp += hard.stats.ped_calcs;
            hd += hard.detections;

            let mut rng = StdRng::seed_from_u64(params.seed * 1000 + t);
            let ch = model.realize(&mut rng);
            let soft = uplink_frame_soft(&cfg, &ch, snr, &mut rng);
            soft_fail += soft.client_ok.iter().filter(|&&ok| !ok).count();
            sp += soft.stats.ped_calcs;
            sd += soft.detections;
        }
        let denom = (trials * 4) as f64;
        println!(
            "{:>8.0} | {:>10.3} {:>10.3} | {:>13.1} {:>13.1}",
            snr,
            hard_fail as f64 / denom,
            soft_fail as f64 / denom,
            hp as f64 / hd as f64,
            sp as f64 / sd as f64,
        );
    }
    rule(84);
    println!("Soft output costs one constrained search per bit; it buys 1-2 dB of SNR.");
}
