//! Figure 9: CDF of κ² (dB) across testbed links, subcarriers, and spatial
//! streams, for 2×2, 2×4, 3×4, and 4×4 configurations.
//!
//! Higher κ² = worse channel conditioning. The paper's headline reading:
//! "in the two-client, two receive antenna case, 60% of the links
//! experience channels with condition numbers larger than 10 dB while in
//! the 4×4 case, nearly all links are poorly conditioned."

use gs_bench::{params_from_args, rule};
use gs_channel::Testbed;
use gs_sim::{conditioning_cdfs, PAPER_CONFIGS};

fn main() {
    let params = params_from_args();
    let tb = Testbed::office();
    let max_links = 60;

    println!("Figure 9 — CDF of kappa^2 (dB) across links and subcarriers");
    rule(72);
    println!(
        "{:>10} | {:>10} {:>10} {:>10} {:>10}",
        "CDF", "2c x 2a", "2c x 4a", "3c x 4a", "4c x 4a"
    );
    rule(72);

    let cdfs: Vec<_> = PAPER_CONFIGS
        .iter()
        .map(|&(nc, na)| conditioning_cdfs(&params, &tb, nc, na, max_links).0)
        .collect();

    for pct in [5, 10, 25, 50, 75, 90, 95] {
        let p = pct as f64 / 100.0;
        print!("{:>9}% |", pct);
        for cdf in &cdfs {
            print!(" {:>9.1}", cdf.quantile(p));
        }
        println!();
    }
    rule(72);
    println!("Fraction of links with kappa^2 > 10 dB (paper: 60% for 2x2; ~all for 4x4):");
    for (cdf, &(nc, na)) in cdfs.iter().zip(PAPER_CONFIGS.iter()) {
        println!("  {nc} clients x {na} AP antennas: {:.0}%", 100.0 * cdf.fraction_above(10.0));
    }
}
