//! # gs-bench
//!
//! The benchmark harness of the Geosphere workspace. One binary per paper
//! table/figure (run with `cargo run -p gs-bench --release --bin <name>`),
//! plus Criterion micro-benchmarks for the decoders and substrates.
//!
//! Every binary accepts `--quick` (small smoke run) and `--full`
//! (figure-fidelity run); the default sits in between.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gs_sim::ExperimentParams;

/// Parses the common `--quick` / `--full` / `--seed N` flags.
pub fn params_from_args() -> ExperimentParams {
    let args: Vec<String> = std::env::args().collect();
    let mut params = if args.iter().any(|a| a == "--quick") {
        ExperimentParams::quick()
    } else if args.iter().any(|a| a == "--full") {
        ExperimentParams::full()
    } else {
        // Default: between quick and full — enough fidelity to see the
        // paper's shapes in minutes.
        ExperimentParams {
            seed: 2014,
            frames_per_point: 6,
            groups_per_point: 5,
            payload_bits: 1024,
            workers: 1,
        }
    };
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            params.seed = v;
        }
    }
    // `--workers N` fans frame decoding out across N threads (0 = machine
    // parallelism); measured numbers are bit-identical to serial.
    if let Some(pos) = args.iter().position(|a| a == "--workers") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            params.workers = v;
        }
    }
    params
}

/// Reads an integer flag like `--clients 4`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Reads a float flag like `--target-fer 0.01`.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a rule line for table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
