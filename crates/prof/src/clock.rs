//! Shared tick clock for the profiler and the flight recorder.
//!
//! Compiled whenever either the `profile` or the `trace` feature is on;
//! both subsystems stamp events with the same counter so a trace dump and
//! a cycle table taken from the same run line up.

use std::sync::OnceLock;

/// Raw tick counter: TSC on `x86_64`, monotonic nanoseconds elsewhere.
/// Only deltas are meaningful; convert with [`ticks_per_sec`].
#[inline]
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // _rdtsc is a register read; no memory is touched.
pub fn ticks() -> u64 {
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Raw tick counter (monotonic nanoseconds since first use).
#[inline]
#[cfg(not(target_arch = "x86_64"))]
pub fn ticks() -> u64 {
    use std::time::Instant;
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Measured tick rate (ticks per wall-clock second), calibrated once per
/// process with a short spin against `Instant`. Used to render the cycle
/// table in milliseconds and to convert trace timestamps to microseconds.
pub fn ticks_per_sec() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let start = std::time::Instant::now();
        let t0 = ticks();
        while start.elapsed() < std::time::Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        let dt = ticks().wrapping_sub(t0);
        dt as f64 / start.elapsed().as_secs_f64()
    })
}
