//! The live implementation behind the `profile` feature: per-thread
//! counter tables, the scope stack doing self-time attribution, and the
//! tick clock.

use crate::{Stage, StageProfile};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Deepest scope nesting tracked per thread. Deeper scopes still count
/// invocations but stop re-attributing time (the enclosing scope absorbs
/// it) — the receive chain nests 3–4 deep, so 32 is pure headroom.
const MAX_DEPTH: usize = 32;

/// One row of a thread's table. Single-writer: only the owning thread
/// stores, so plain `Relaxed` load+store (no RMW contention) is enough;
/// [`snapshot`] on other threads sees values at worst one scope stale.
#[derive(Default)]
struct StageCell {
    cycles: AtomicU64,
    invocations: AtomicU64,
    bytes: AtomicU64,
}

/// Owner-only writer: load+store is a cheap non-atomic-RMW add.
#[inline]
fn bump(counter: &AtomicU64, by: u64) {
    counter.store(counter.load(Ordering::Relaxed).wrapping_add(by), Ordering::Relaxed);
}

/// A thread's counter table, shared with the global registry so the
/// aggregate outlives the thread (shard workers come and go; their cycles
/// must not).
struct ThreadSlot {
    cells: [StageCell; Stage::COUNT],
}

impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot { cells: std::array::from_fn(|_| StageCell::default()) }
    }

    #[inline]
    fn add_cycles(&self, idx: usize, d: u64) {
        bump(&self.cells[idx].cycles, d);
    }
}

/// Every table ever registered. Entries are kept after thread exit on
/// purpose — that is what preserves attribution across the
/// `ShardedDetectionPool` handoff. A slot is ~300 bytes, so even heavy
/// thread churn in the test suite stays negligible.
static REGISTRY: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());

struct Local {
    slot: Arc<ThreadSlot>,
    depth: Cell<usize>,
    stack_stage: [Cell<usize>; MAX_DEPTH],
    resume: [Cell<u64>; MAX_DEPTH],
}

impl Local {
    fn register() -> Self {
        let slot = Arc::new(ThreadSlot::new());
        REGISTRY.lock().expect("profiler registry poisoned").push(Arc::clone(&slot));
        Local {
            slot,
            depth: Cell::new(0),
            stack_stage: std::array::from_fn(|_| Cell::new(0)),
            resume: std::array::from_fn(|_| Cell::new(0)),
        }
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

pub use crate::clock::{ticks, ticks_per_sec};

/// Live scope handle: attributes self-time to `stage` until dropped.
#[must_use = "a profiling scope measures until dropped"]
pub struct ScopeGuard {
    stage: Stage,
    /// False when the stack was full at entry (the scope still counted an
    /// invocation but did not push, so drop must not pop).
    pushed: bool,
}

impl ScopeGuard {
    /// Attribute `n` bytes to this scope's stage.
    #[inline]
    pub fn add_bytes(&self, n: u64) {
        let _ = LOCAL.try_with(|l| {
            bump(&l.slot.cells[self.stage.index()].bytes, n);
        });
    }
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        // try_with: guards may drop during thread teardown after the TLS
        // slot is gone; losing those final ticks beats aborting.
        let _ = LOCAL.try_with(|l| {
            let now = ticks();
            let d = l.depth.get() - 1;
            l.slot.add_cycles(l.stack_stage[d].get(), now.saturating_sub(l.resume[d].get()));
            l.depth.set(d);
            if d > 0 {
                l.resume[d - 1].set(now);
            }
        });
    }
}

/// Open a profiling scope for `stage` on the current thread.
///
/// Entering attributes the ticks elapsed since the last attribution point
/// to the *enclosing* scope's stage (self-time accounting), then starts
/// attributing to `stage`; dropping the returned guard reverses it.
#[inline]
pub fn scope(stage: Stage) -> ScopeGuard {
    let pushed = LOCAL
        .try_with(|l| {
            let now = ticks();
            let idx = stage.index();
            bump(&l.slot.cells[idx].invocations, 1);
            let d = l.depth.get();
            if d >= MAX_DEPTH {
                return false;
            }
            if d > 0 {
                l.slot.add_cycles(
                    l.stack_stage[d - 1].get(),
                    now.saturating_sub(l.resume[d - 1].get()),
                );
            }
            l.stack_stage[d].set(idx);
            l.resume[d].set(now);
            l.depth.set(d + 1);
            true
        })
        .unwrap_or(false);
    ScopeGuard { stage, pushed }
}

/// Explicitly attribute pre-measured counters to `stage` on the current
/// thread's table — for wall-time spans that cross threads, e.g. the
/// queue wait between a task's submit stamp and its pop.
#[inline]
pub fn record(stage: Stage, cycles: u64, invocations: u64, bytes: u64) {
    let _ = LOCAL.try_with(|l| {
        let c = &l.slot.cells[stage.index()];
        if cycles > 0 {
            bump(&c.cycles, cycles);
        }
        if invocations > 0 {
            bump(&c.invocations, invocations);
        }
        if bytes > 0 {
            bump(&c.bytes, bytes);
        }
    });
}

/// Aggregate every registered thread table (including exited threads)
/// into one [`StageProfile`]. Allocates transiently (registry lock +
/// iteration) — an observability call, not a hot-path one.
pub fn snapshot() -> StageProfile {
    let mut out = StageProfile::empty();
    let registry = REGISTRY.lock().expect("profiler registry poisoned");
    for slot in registry.iter() {
        for (rec, cell) in out.stages.iter_mut().zip(slot.cells.iter()) {
            rec.cycles = rec.cycles.wrapping_add(cell.cycles.load(Ordering::Relaxed));
            rec.invocations =
                rec.invocations.wrapping_add(cell.invocations.load(Ordering::Relaxed));
            rec.bytes = rec.bytes.wrapping_add(cell.bytes.load(Ordering::Relaxed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_ticks(min: u64) {
        let t0 = ticks();
        while ticks().wrapping_sub(t0) < min {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn scopes_attribute_self_time() {
        let before = snapshot();
        {
            let _outer = scope(Stage::Recover);
            spin_ticks(20_000);
            {
                let _inner = scope(Stage::Viterbi);
                spin_ticks(20_000);
            }
            spin_ticks(20_000);
        }
        let d = snapshot().delta(&before);
        let rec = d.stages[Stage::Recover.index()];
        let vit = d.stages[Stage::Viterbi.index()];
        assert_eq!(rec.invocations, 1);
        assert_eq!(vit.invocations, 1);
        // Self time: outer ≈ 2 spins, inner ≈ 1 spin, neither zero and
        // the inner spin is not double-counted into the outer.
        assert!(rec.cycles >= 30_000, "outer self-time too small: {}", rec.cycles);
        assert!(vit.cycles >= 15_000, "inner self-time too small: {}", vit.cycles);
    }

    #[test]
    fn record_and_bytes_land_in_the_table() {
        let before = snapshot();
        record(Stage::Queue, 777, 3, 0);
        let g = scope(Stage::PedKernel);
        g.add_bytes(4096);
        drop(g);
        let d = snapshot().delta(&before);
        assert_eq!(d.stages[Stage::Queue.index()].cycles, 777);
        assert_eq!(d.stages[Stage::Queue.index()].invocations, 3);
        assert_eq!(d.stages[Stage::PedKernel.index()].bytes, 4096);
    }

    #[test]
    fn counters_survive_thread_exit() {
        let before = snapshot();
        std::thread::spawn(|| {
            let _g = scope(Stage::Enumerate);
            spin_ticks(10_000);
        })
        .join()
        .unwrap();
        let d = snapshot().delta(&before);
        assert!(d.stages[Stage::Enumerate.index()].cycles > 0);
        assert_eq!(d.stages[Stage::Enumerate.index()].invocations, 1);
    }

    #[test]
    fn depth_overflow_counts_but_does_not_corrupt() {
        let before = snapshot();
        fn nest(n: usize) {
            let _g = scope(Stage::Filter);
            if n > 0 {
                nest(n - 1);
            }
        }
        nest(MAX_DEPTH + 8);
        let d = snapshot().delta(&before);
        assert_eq!(d.stages[Stage::Filter.index()].invocations, (MAX_DEPTH + 9) as u64);
        LOCAL.with(|l| assert_eq!(l.depth.get(), 0));
    }

    #[test]
    fn tick_rate_is_sane() {
        let tps = ticks_per_sec();
        // Any real TSC or nanosecond clock ticks between 10 MHz and 10 GHz.
        assert!(tps > 1e7 && tps < 1e10, "implausible tick rate {tps}");
    }
}
