//! Per-frame flight recorder: fixed-capacity per-thread event rings that
//! record where each streaming frame spent its time, anomaly-triggered
//! snapshot dumps, and a Chrome trace-event exporter.
//!
//! The stage cycle table (the rest of this crate) answers "where does the
//! pipeline spend time *on average*"; this module answers "where did
//! **that frame** go" — the causal story behind a single deadline miss,
//! tier switch, or admission refusal.
//!
//! # Recording model
//!
//! Each thread owns one fixed-capacity ring of events ([`RING_CAP`]
//! slots). An event is three words — tsc timestamp, frame id, and a
//! packed word holding the [`TracePoint`], [`EventKind`], client, shard,
//! and tier — written with plain `Relaxed` stores plus a per-slot
//! sequence word (seqlock) so a concurrent snapshot reader detects and
//! discards torn slots. Recording is **allocation-free and lock-free**
//! after a thread's first event (which registers the ring); the ring
//! overwrites oldest-first, so steady state keeps the last `RING_CAP`
//! events per thread — a black box, not a log.
//!
//! Most instrumentation points don't pass identity around: the runtime
//! sets an ambient per-thread frame context ([`set_context`]) before
//! calling into plan/detect/recover, and [`emit`]/[`span`] read it. With
//! no context set, emission is a no-op — serial decode paths record
//! nothing and pay one TLS read.
//!
//! # Triggers, retention, export
//!
//! Anomalies ([`Trigger`]: deadline miss, tier switch, admission
//! refusal, injected fault, campaign invariant violation) call
//! [`trigger`], which — rate-limited by [`set_min_dump_gap_ms`] —
//! snapshots every ring, stitches the events into causally-ordered
//! per-frame timelines ([`FrameTimeline`]), and pushes the result into a
//! bounded retention buffer ([`RETAIN_DUMPS`] entries, oldest evicted).
//! [`recent_dumps`] serves them (the `gs-telemetry` `/trace` endpoint),
//! and [`chrome_trace_json`] renders a dump as Chrome trace-event JSON
//! that loads directly in Perfetto or `about://tracing`.
//!
//! # Compile-time erasure
//!
//! Everything hot is gated on the `trace` cargo feature with the same
//! discipline as the `profile` feature: with it off (the default),
//! [`emit`] and [`set_context`] are empty `#[inline(always)]` functions,
//! [`TraceSpan`] is a unit struct, and [`snapshot_events`] returns
//! nothing. The *types* (events, timelines, dumps, the assembler and the
//! Chrome exporter) are always compiled so call sites and tooling never
//! need `#[cfg]`.

use crate::Stage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Frame-id value meaning "no frame": events carry it when emitted
/// outside any frame context, and the assembler leaves them out of
/// per-frame timelines (they still appear in the raw dump).
pub const NO_FRAME: u64 = u64::MAX;
/// Shard value meaning "not shard-specific".
pub const NO_SHARD: u16 = u16::MAX;
/// Tier value meaning "tier unknown / not applicable".
pub const NO_TIER: u8 = u8::MAX;
/// Client value meaning "client unknown" (clients pack into 16 bits on
/// the wire; larger indices saturate to this).
pub const NO_CLIENT: u32 = u16::MAX as u32;

/// Ring capacity per thread, in events. Power of two; at 32 bytes per
/// slot a ring is 128 KiB, and a frame's hard chain is ~30 events, so one
/// ring spans >100 frames of history per thread.
pub const RING_CAP: usize = 4096;

/// Maximum retained anomaly dumps; older dumps are evicted FIFO.
pub const RETAIN_DUMPS: usize = 8;

// ---------------------------------------------------------------------------
// Points, kinds, triggers
// ---------------------------------------------------------------------------

/// Where in the pipeline an event was recorded: one of the 12 profiling
/// stages (span points), the detect span, or a control-plane point from
/// the streaming runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TracePoint {
    /// A span over one of the 12 profiling stages ([`Stage`]).
    Stage(Stage),
    /// Detection of one frame's portion on a shard worker (spans the EDF
    /// pop-to-done window; the per-stage detail nests inside).
    Detect,
    /// Frame handed to `FrameStream::submit` (instant).
    Submit,
    /// Admission accepted the frame; the policy's tier decision is in the
    /// event's tier field (instant).
    Admit,
    /// Admission refused the frame — stream full (instant).
    Refuse,
    /// Detection task enqueued on a shard's EDF queue (instant).
    Enqueue,
    /// Detection task popped off a shard's EDF queue (instant).
    Pop,
    /// Completed frame parked waiting for per-client in-order delivery
    /// (instant).
    Park,
    /// Frame delivered to the consumer (instant).
    Deliver,
    /// The adaptation policy switched detector tier (instant).
    TierSwitch,
    /// A worker fault (panic / poisoned pool) was observed (instant).
    Fault,
    /// A campaign invariant violation was flagged (instant).
    Violation,
}

impl TracePoint {
    /// Number of distinct point codes.
    pub const COUNT: usize = Stage::COUNT + 11;

    /// Stable wire code. Stage spans map to their stage index
    /// (`0..12`); control points follow.
    pub const fn code(self) -> u16 {
        match self {
            TracePoint::Stage(s) => s.index() as u16,
            TracePoint::Detect => 12,
            TracePoint::Submit => 13,
            TracePoint::Admit => 14,
            TracePoint::Refuse => 15,
            TracePoint::Enqueue => 16,
            TracePoint::Pop => 17,
            TracePoint::Park => 18,
            TracePoint::Deliver => 19,
            TracePoint::TierSwitch => 20,
            TracePoint::Fault => 21,
            TracePoint::Violation => 22,
        }
    }

    /// Decode a wire code; `None` for out-of-range (torn slot).
    pub fn from_code(code: u16) -> Option<TracePoint> {
        if (code as usize) < Stage::COUNT {
            return Some(TracePoint::Stage(Stage::ALL[code as usize]));
        }
        Some(match code {
            12 => TracePoint::Detect,
            13 => TracePoint::Submit,
            14 => TracePoint::Admit,
            15 => TracePoint::Refuse,
            16 => TracePoint::Enqueue,
            17 => TracePoint::Pop,
            18 => TracePoint::Park,
            19 => TracePoint::Deliver,
            20 => TracePoint::TierSwitch,
            21 => TracePoint::Fault,
            22 => TracePoint::Violation,
            _ => return None,
        })
    }

    /// Stable snake_case name (stage name for stage spans).
    pub const fn name(self) -> &'static str {
        match self {
            TracePoint::Stage(s) => s.name(),
            TracePoint::Detect => "detect",
            TracePoint::Submit => "submit",
            TracePoint::Admit => "admit",
            TracePoint::Refuse => "refuse",
            TracePoint::Enqueue => "enqueue",
            TracePoint::Pop => "pop",
            TracePoint::Park => "park",
            TracePoint::Deliver => "deliver",
            TracePoint::TierSwitch => "tier_switch",
            TracePoint::Fault => "fault",
            TracePoint::Violation => "violation",
        }
    }
}

/// The "hard chain" of span points every delivered streaming frame passes
/// through, in pipeline order. The causal-order tests and the acceptance
/// check ("submit→delivery with all hard-chain stages present") key off
/// this list.
pub const HARD_CHAIN: [TracePoint; 6] = [
    TracePoint::Stage(Stage::Plan),
    TracePoint::Detect,
    TracePoint::Stage(Stage::Scatter),
    TracePoint::Stage(Stage::Recover),
    TracePoint::Stage(Stage::Viterbi),
    TracePoint::Stage(Stage::Crc),
];

/// Control-plane instants every delivered frame passes through, in order.
pub const CONTROL_CHAIN: [TracePoint; 5] = [
    TracePoint::Submit,
    TracePoint::Admit,
    TracePoint::Enqueue,
    TracePoint::Pop,
    TracePoint::Deliver,
];

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Span begin.
    Begin,
    /// Span end.
    End,
    /// Point event.
    Instant,
}

impl EventKind {
    /// Stable wire code (`Begin < End < Instant`, so a same-tick begin
    /// sorts before its end).
    pub const fn code(self) -> u8 {
        match self {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<EventKind> {
        match code {
            0 => Some(EventKind::Begin),
            1 => Some(EventKind::End),
            2 => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// What anomaly snapshotted the rings into a retained dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// A frame was delivered past its deadline.
    DeadlineMiss,
    /// The adaptation policy moved the stream to a different tier.
    TierSwitch,
    /// `try_submit` refused a frame (stream full).
    AdmissionRefusal,
    /// A worker fault (panic / poisoned pool) was observed.
    Fault,
    /// A campaign scenario invariant was violated.
    Violation,
    /// Explicit operator/test request.
    Manual,
}

impl Trigger {
    /// Number of trigger kinds.
    pub const COUNT: usize = 6;
    /// Every trigger, in index order.
    pub const ALL: [Trigger; Trigger::COUNT] = [
        Trigger::DeadlineMiss,
        Trigger::TierSwitch,
        Trigger::AdmissionRefusal,
        Trigger::Fault,
        Trigger::Violation,
        Trigger::Manual,
    ];

    /// Dense index (`0..COUNT`).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name.
    pub const fn name(self) -> &'static str {
        match self {
            Trigger::DeadlineMiss => "deadline_miss",
            Trigger::TierSwitch => "tier_switch",
            Trigger::AdmissionRefusal => "admission_refusal",
            Trigger::Fault => "fault",
            Trigger::Violation => "violation",
            Trigger::Manual => "manual",
        }
    }
}

// ---------------------------------------------------------------------------
// Events, context
// ---------------------------------------------------------------------------

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Tick timestamp (same clock as the profiler; convert via the dump's
    /// `ticks_per_us`).
    pub tsc: u64,
    /// Frame id (global submission ordinal), or [`NO_FRAME`].
    pub frame: u64,
    /// Recording thread's ring id.
    pub thread: u16,
    /// Where in the pipeline.
    pub point: TracePoint,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Client index, or [`NO_CLIENT`].
    pub client: u32,
    /// Shard index, or [`NO_SHARD`].
    pub shard: u16,
    /// Detector tier, or [`NO_TIER`].
    pub tier: u8,
}

/// Ambient per-thread frame identity; set by the runtime before calling
/// into pipeline stages so deep instrumentation points need no plumbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameCtx {
    /// Frame id (global submission ordinal), or [`NO_FRAME`].
    pub frame: u64,
    /// Client index.
    pub client: u32,
    /// Shard index, or [`NO_SHARD`].
    pub shard: u16,
    /// Detector tier, or [`NO_TIER`].
    pub tier: u8,
}

impl FrameCtx {
    /// The unset context (recording disabled for the thread).
    pub const NONE: FrameCtx =
        FrameCtx { frame: NO_FRAME, client: NO_CLIENT, shard: NO_SHARD, tier: NO_TIER };
}

// ---------------------------------------------------------------------------
// Timeline assembly
// ---------------------------------------------------------------------------

/// A paired begin/end span inside one frame's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineSpan {
    /// Span point.
    pub point: TracePoint,
    /// Recording thread.
    pub thread: u16,
    /// Shard, or [`NO_SHARD`].
    pub shard: u16,
    /// Begin tick.
    pub begin: u64,
    /// End tick (`>= begin`; an unmatched begin closes at the frame's
    /// last observed tick).
    pub end: u64,
}

/// An instant inside one frame's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineInstant {
    /// Instant point.
    pub point: TracePoint,
    /// Recording thread.
    pub thread: u16,
    /// Shard, or [`NO_SHARD`].
    pub shard: u16,
    /// Tick.
    pub tsc: u64,
}

/// The causal story of one frame, stitched from every thread's ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameTimeline {
    /// Frame id.
    pub frame: u64,
    /// Client index (first observed), or [`NO_CLIENT`].
    pub client: u32,
    /// Detector tier (last observed), or [`NO_TIER`].
    pub tier: u8,
    /// Paired spans, ordered by begin tick.
    pub spans: Vec<TimelineSpan>,
    /// Instants, ordered by tick.
    pub instants: Vec<TimelineInstant>,
    /// Earliest tick observed for the frame.
    pub begin: u64,
    /// Latest tick observed for the frame.
    pub end: u64,
}

impl FrameTimeline {
    /// Whether any span or instant recorded `point`.
    pub fn has_point(&self, point: TracePoint) -> bool {
        self.spans.iter().any(|s| s.point == point)
            || self.instants.iter().any(|i| i.point == point)
    }

    /// Earliest tick at which `point` was observed (span begin or
    /// instant), if at all.
    pub fn first_tsc(&self, point: TracePoint) -> Option<u64> {
        let s = self.spans.iter().filter(|s| s.point == point).map(|s| s.begin).min();
        let i = self.instants.iter().filter(|i| i.point == point).map(|i| i.tsc).min();
        match (s, i) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Stitch raw events (from any number of threads) into per-frame
/// timelines: begins pair with the nearest following matching end on the
/// same thread, unmatched begins close at the frame's last tick, and
/// events with [`NO_FRAME`] are skipped. Output is ordered by frame id.
pub fn assemble(events: &[TraceEvent]) -> Vec<FrameTimeline> {
    use std::collections::BTreeMap;
    let mut by_frame: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.frame != NO_FRAME {
            by_frame.entry(e.frame).or_default().push(*e);
        }
    }
    let mut out = Vec::with_capacity(by_frame.len());
    for (frame, mut evs) in by_frame {
        evs.sort_by_key(|e| (e.tsc, e.kind.code()));
        let last_tsc = evs.last().map(|e| e.tsc).unwrap_or(0);
        let mut spans = Vec::new();
        let mut instants = Vec::new();
        // Per-thread stacks of open begins: (thread, point, begin, shard).
        let mut open: Vec<(u16, TracePoint, u64, u16)> = Vec::new();
        let mut client = NO_CLIENT;
        let mut tier = NO_TIER;
        for e in &evs {
            if client == NO_CLIENT && e.client != NO_CLIENT {
                client = e.client;
            }
            if e.tier != NO_TIER {
                tier = e.tier;
            }
            match e.kind {
                EventKind::Begin => open.push((e.thread, e.point, e.tsc, e.shard)),
                EventKind::End => {
                    if let Some(pos) =
                        open.iter().rposition(|(t, p, _, _)| *t == e.thread && *p == e.point)
                    {
                        let (thread, point, begin, shard) = open.remove(pos);
                        spans.push(TimelineSpan {
                            point,
                            thread,
                            shard,
                            begin,
                            end: e.tsc.max(begin),
                        });
                    }
                }
                EventKind::Instant => instants.push(TimelineInstant {
                    point: e.point,
                    thread: e.thread,
                    shard: e.shard,
                    tsc: e.tsc,
                }),
            }
        }
        for (thread, point, begin, shard) in open {
            spans.push(TimelineSpan { point, thread, shard, begin, end: last_tsc.max(begin) });
        }
        spans.sort_by_key(|s| (s.begin, s.end));
        instants.sort_by_key(|i| i.tsc);
        let begin = evs.first().map(|e| e.tsc).unwrap_or(0);
        let end = spans.iter().map(|s| s.end).chain([last_tsc]).max().unwrap_or(0);
        out.push(FrameTimeline { frame, client, tier, spans, instants, begin, end });
    }
    out
}

// ---------------------------------------------------------------------------
// Dumps: capture, retention, export
// ---------------------------------------------------------------------------

/// One retained flight-recorder dump: the raw ring snapshot plus its
/// assembled per-frame timelines and capture metadata.
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// What fired the capture.
    pub trigger: Trigger,
    /// The frame implicated by the trigger, or [`NO_FRAME`].
    pub frame: u64,
    /// Process-wide dump ordinal (monotone).
    pub seq: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch (0 for
    /// synthetic dumps).
    pub unix_ms: u64,
    /// Tick-to-microsecond conversion for this dump's timestamps.
    pub ticks_per_us: f64,
    /// Every valid ring slot at capture, ordered by tick.
    pub events: Vec<TraceEvent>,
    /// Per-frame causal timelines assembled from `events`.
    pub timelines: Vec<FrameTimeline>,
}

impl TraceDump {
    /// Build a dump from raw events (sorting them and assembling the
    /// timelines). Used by [`trigger`] and by synthetic tests.
    pub fn from_events(
        trigger: Trigger,
        frame: u64,
        seq: u64,
        unix_ms: u64,
        ticks_per_us: f64,
        mut events: Vec<TraceEvent>,
    ) -> TraceDump {
        events.sort_by_key(|e| (e.tsc, e.kind.code()));
        let timelines = assemble(&events);
        TraceDump { trigger, frame, seq, unix_ms, ticks_per_us, events, timelines }
    }
}

static DUMPS: Mutex<Vec<TraceDump>> = Mutex::new(Vec::new());
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static LAST_DUMP_MS: AtomicU64 = AtomicU64::new(0);
static MIN_DUMP_GAP_MS: AtomicU64 = AtomicU64::new(200);
static TRIGGER_COUNTS: [AtomicU64; Trigger::COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn now_ms() -> u64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH.get_or_init(std::time::Instant::now).elapsed().as_millis() as u64
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Report an anomaly. Always counts it (see [`trigger_counts`]); when the
/// recorder is compiled in, armed, and the rate limit allows, also
/// snapshots every ring into a retained [`TraceDump`]. Returns whether a
/// dump was captured. Cold path: allocates freely.
pub fn trigger(trigger: Trigger, frame: u64) -> bool {
    TRIGGER_COUNTS[trigger.index()].fetch_add(1, Ordering::Relaxed);
    if !recording_enabled() || !armed() {
        return false;
    }
    let now = now_ms().max(1);
    let last = LAST_DUMP_MS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < MIN_DUMP_GAP_MS.load(Ordering::Relaxed) {
        return false;
    }
    // Claim the capture; a concurrent loser skips (its anomaly is in the
    // snapshot the winner takes anyway).
    if LAST_DUMP_MS.compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed).is_err() {
        return false;
    }
    let events = snapshot_events();
    if events.is_empty() {
        return false;
    }
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let dump = TraceDump::from_events(trigger, frame, seq, unix_ms(), ticks_per_us_live(), events);
    let mut dumps = DUMPS.lock().expect("trace dump buffer poisoned");
    dumps.push(dump);
    while dumps.len() > RETAIN_DUMPS {
        dumps.remove(0);
    }
    true
}

/// Retained anomaly dumps, oldest first (at most [`RETAIN_DUMPS`]).
pub fn recent_dumps() -> Vec<TraceDump> {
    DUMPS.lock().expect("trace dump buffer poisoned").clone()
}

/// Number of retained dumps.
pub fn dump_count() -> usize {
    DUMPS.lock().expect("trace dump buffer poisoned").len()
}

/// Clear retained dumps and the rate-limit clock (tests).
pub fn clear_dumps() {
    DUMPS.lock().expect("trace dump buffer poisoned").clear();
    LAST_DUMP_MS.store(0, Ordering::Relaxed);
}

/// Lifetime anomaly counts by [`Trigger`] index (counted even when the
/// recorder is compiled out, so `/metrics` can always export them).
pub fn trigger_counts() -> [u64; Trigger::COUNT] {
    std::array::from_fn(|i| TRIGGER_COUNTS[i].load(Ordering::Relaxed))
}

/// Set the minimum gap between captured dumps, in milliseconds (default
/// 200). `0` disables rate limiting (tests); large values effectively
/// freeze capture after the first dump.
pub fn set_min_dump_gap_ms(ms: u64) {
    MIN_DUMP_GAP_MS.store(ms, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Render a dump as Chrome trace-event JSON (the `traceEvents` array
/// format): each frame becomes a process (`pid = frame + 1`) named
/// `frame N`, spans are `ph:"X"` complete events on their recording
/// thread's track, instants are `ph:"i"`, no-frame events land under
/// `pid 0` ("stream"), and the trigger is a global instant. Loads in
/// Perfetto and `about://tracing`.
pub fn chrome_trace_json(dump: &TraceDump) -> String {
    use std::fmt::Write;
    let tpu = if dump.ticks_per_us > 0.0 { dump.ticks_per_us } else { 1.0 };
    let t0 = dump.events.iter().map(|e| e.tsc).min().unwrap_or(0);
    let us = |t: u64| t.saturating_sub(t0) as f64 / tpu;
    let mut out = String::with_capacity(4096 + dump.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for tl in &dump.timelines {
        let pid = tl.frame.wrapping_add(1);
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"frame {} client {}\"}}}}",
            tl.frame, tl.client
        );
        for s in &tl.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"frame\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"frame\":{},\"client\":{},\"shard\":{},\
                 \"tier\":{}}}}}",
                s.point.name(),
                s.thread,
                us(s.begin),
                us(s.end) - us(s.begin),
                tl.frame,
                tl.client,
                s.shard,
                tl.tier
            );
        }
        for i in &tl.instants {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"frame\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                 \"tid\":{},\"ts\":{:.3},\"args\":{{\"frame\":{},\"client\":{},\"shard\":{},\
                 \"tier\":{}}}}}",
                i.point.name(),
                i.thread,
                us(i.tsc),
                tl.frame,
                tl.client,
                i.shard,
                tl.tier
            );
        }
    }
    let mut stream_named = false;
    for e in dump.events.iter().filter(|e| e.frame == NO_FRAME) {
        if !stream_named {
            stream_named = true;
            sep(&mut out);
            out.push_str(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                 \"args\":{\"name\":\"stream\"}}",
            );
        }
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"stream\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
             \"tid\":{},\"ts\":{:.3},\"args\":{{\"client\":{},\"shard\":{},\"tier\":{}}}}}",
            e.point.name(),
            e.thread,
            us(e.tsc),
            e.client,
            e.shard,
            e.tier
        );
    }
    sep(&mut out);
    let trig_ts = dump.events.iter().map(|e| e.tsc).max().unwrap_or(t0);
    let _ = write!(
        out,
        "{{\"name\":\"trigger:{}\",\"cat\":\"trigger\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\
         \"tid\":0,\"ts\":{:.3},\"args\":{{\"frame\":{},\"seq\":{}}}}}",
        dump.trigger.name(),
        us(trig_ts),
        dump.frame as i64,
        dump.seq
    );
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Live recorder (feature `trace`)
// ---------------------------------------------------------------------------

#[cfg(feature = "trace")]
mod live {
    use super::{EventKind, FrameCtx, TraceEvent, TracePoint, NO_CLIENT, NO_FRAME, RING_CAP};
    use crate::clock;
    use std::cell::Cell;
    use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    pub(super) static ARMED: AtomicBool = AtomicBool::new(true);

    fn pack(point: u16, kind: u8, tier: u8, shard: u16, client: u16) -> u64 {
        (client as u64)
            | ((shard as u64) << 16)
            | ((tier as u64) << 32)
            | ((kind as u64) << 40)
            | ((point as u64) << 48)
    }

    struct Slot {
        gen: AtomicU64,
        tsc: AtomicU64,
        frame: AtomicU64,
        meta: AtomicU64,
    }

    struct Ring {
        thread: u16,
        head: AtomicU64,
        slots: Box<[Slot]>,
    }

    impl Ring {
        /// Single-writer push with a per-slot seqlock: invalidate, write
        /// payload, validate. A concurrent reader that straddles the
        /// write sees a generation mismatch and drops the slot.
        #[inline]
        fn push(&self, tsc: u64, frame: u64, meta: u64) {
            let h = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(h as usize) & (RING_CAP - 1)];
            slot.gen.store(0, Ordering::Relaxed);
            fence(Ordering::Release); // invalidation visible before payload
            slot.tsc.store(tsc, Ordering::Relaxed);
            slot.frame.store(frame, Ordering::Relaxed);
            slot.meta.store(meta, Ordering::Relaxed);
            slot.gen.store(h.wrapping_add(1), Ordering::Release);
            self.head.store(h.wrapping_add(1), Ordering::Relaxed);
        }

        fn read_into(&self, out: &mut Vec<TraceEvent>) {
            for slot in self.slots.iter() {
                let g1 = slot.gen.load(Ordering::Acquire);
                if g1 == 0 {
                    continue;
                }
                let tsc = slot.tsc.load(Ordering::Relaxed);
                let frame = slot.frame.load(Ordering::Relaxed);
                let meta = slot.meta.load(Ordering::Relaxed);
                fence(Ordering::Acquire); // payload reads complete before re-check
                if slot.gen.load(Ordering::Relaxed) != g1 {
                    continue; // torn
                }
                let point = match TracePoint::from_code((meta >> 48) as u16) {
                    Some(p) => p,
                    None => continue,
                };
                let kind = match EventKind::from_code((meta >> 40) as u8) {
                    Some(k) => k,
                    None => continue,
                };
                let client16 = (meta & 0xFFFF) as u32;
                out.push(TraceEvent {
                    tsc,
                    frame,
                    thread: self.thread,
                    point,
                    kind,
                    client: client16,
                    shard: ((meta >> 16) & 0xFFFF) as u16,
                    tier: ((meta >> 32) & 0xFF) as u8,
                });
            }
        }
    }

    static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

    struct TraceLocal {
        ring: Arc<Ring>,
        frame: Cell<u64>,
        client: Cell<u32>,
        shard: Cell<u16>,
        tier: Cell<u8>,
    }

    impl TraceLocal {
        fn register() -> Self {
            let mut rings = RINGS.lock().expect("trace ring registry poisoned");
            let thread = rings.len().min(u16::MAX as usize - 1) as u16;
            let ring = Arc::new(Ring {
                thread,
                head: AtomicU64::new(0),
                slots: (0..RING_CAP)
                    .map(|_| Slot {
                        gen: AtomicU64::new(0),
                        tsc: AtomicU64::new(0),
                        frame: AtomicU64::new(0),
                        meta: AtomicU64::new(0),
                    })
                    .collect(),
            });
            rings.push(Arc::clone(&ring));
            let ctx = FrameCtx::NONE;
            TraceLocal {
                ring,
                frame: Cell::new(ctx.frame),
                client: Cell::new(ctx.client),
                shard: Cell::new(ctx.shard),
                tier: Cell::new(ctx.tier),
            }
        }
    }

    thread_local! {
        static TLOCAL: TraceLocal = TraceLocal::register();
    }

    #[inline]
    fn clamp_client(c: u32) -> u16 {
        if c >= NO_CLIENT {
            u16::MAX
        } else {
            c as u16
        }
    }

    /// Set the current thread's frame context (registers the thread's
    /// ring on first use — call once off the measured path to warm up).
    #[inline]
    pub fn set_context(ctx: FrameCtx) {
        let _ = TLOCAL.try_with(|l| {
            l.frame.set(ctx.frame);
            l.client.set(ctx.client);
            l.shard.set(ctx.shard);
            l.tier.set(ctx.tier);
        });
    }

    /// Clear the current thread's frame context.
    #[inline]
    pub fn clear_context() {
        set_context(FrameCtx::NONE);
    }

    /// The current thread's frame context ([`FrameCtx::NONE`] if unset).
    #[inline]
    pub fn context() -> FrameCtx {
        TLOCAL
            .try_with(|l| FrameCtx {
                frame: l.frame.get(),
                client: l.client.get(),
                shard: l.shard.get(),
                tier: l.tier.get(),
            })
            .unwrap_or(FrameCtx::NONE)
    }

    /// Record an instant at `point` under the ambient context. No-op when
    /// disarmed or no context is set.
    #[inline]
    pub fn emit(point: TracePoint) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let _ = TLOCAL.try_with(|l| {
            let frame = l.frame.get();
            if frame == NO_FRAME {
                return;
            }
            l.ring.push(
                clock::ticks(),
                frame,
                pack(
                    point.code(),
                    EventKind::Instant.code(),
                    l.tier.get(),
                    l.shard.get(),
                    clamp_client(l.client.get()),
                ),
            );
        });
    }

    /// Record an event with explicit identity (cross-thread points where
    /// the ambient context belongs to a different frame). No-op when
    /// disarmed.
    #[inline]
    pub fn emit_for(point: TracePoint, kind: EventKind, ctx: FrameCtx) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let _ = TLOCAL.try_with(|l| {
            l.ring.push(
                clock::ticks(),
                ctx.frame,
                pack(point.code(), kind.code(), ctx.tier, ctx.shard, clamp_client(ctx.client)),
            );
        });
    }

    /// Live span guard: begin on creation, end on drop, identity captured
    /// from the ambient context at begin. Inactive (records nothing) when
    /// disarmed or no context is set.
    #[must_use = "a trace span records until dropped"]
    pub struct TraceSpan {
        point: TracePoint,
        ctx: FrameCtx,
        active: bool,
    }

    impl Drop for TraceSpan {
        #[inline]
        fn drop(&mut self) {
            if self.active {
                emit_for(self.point, EventKind::End, self.ctx);
            }
        }
    }

    /// Open a span at `point` under the ambient context.
    #[inline]
    pub fn span(point: TracePoint) -> TraceSpan {
        let ctx = context();
        let active = ctx.frame != NO_FRAME && ARMED.load(Ordering::Relaxed);
        if active {
            emit_for(point, EventKind::Begin, ctx);
        }
        TraceSpan { point, ctx, active }
    }

    /// Snapshot every registered ring into a decoded, tick-ordered event
    /// list. Allocates; an observability call, not a hot-path one.
    pub fn snapshot_events() -> Vec<TraceEvent> {
        let rings = RINGS.lock().expect("trace ring registry poisoned");
        let mut out = Vec::new();
        for r in rings.iter() {
            r.read_into(&mut out);
        }
        drop(rings);
        out.sort_by_key(|e| (e.tsc, e.kind.code()));
        out
    }

    /// Tick-to-microsecond rate for live captures.
    pub fn ticks_per_us_live() -> f64 {
        clock::ticks_per_sec() / 1e6
    }
}

#[cfg(feature = "trace")]
pub use live::{
    clear_context, context, emit, emit_for, set_context, snapshot_events, span, TraceSpan,
};

#[cfg(feature = "trace")]
use live::ticks_per_us_live;

#[cfg(feature = "trace")]
fn armed_impl() -> bool {
    live::ARMED.load(Ordering::Relaxed)
}

#[cfg(feature = "trace")]
fn set_armed_impl(on: bool) {
    live::ARMED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Stub recorder (feature off): identical surface, fully erased.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "trace"))]
mod stub {
    use super::{EventKind, FrameCtx, TraceEvent, TracePoint};

    /// Span handle; a unit struct with the recorder compiled out.
    #[derive(Debug, Default)]
    #[must_use = "a trace span records until dropped"]
    pub struct TraceSpan;

    /// No-op context set (recorder compiled out).
    #[inline(always)]
    pub fn set_context(_ctx: FrameCtx) {}

    /// No-op context clear (recorder compiled out).
    #[inline(always)]
    pub fn clear_context() {}

    /// Always [`FrameCtx::NONE`] (recorder compiled out).
    #[inline(always)]
    pub fn context() -> FrameCtx {
        FrameCtx::NONE
    }

    /// No-op instant (recorder compiled out).
    #[inline(always)]
    pub fn emit(_point: TracePoint) {}

    /// No-op explicit event (recorder compiled out).
    #[inline(always)]
    pub fn emit_for(_point: TracePoint, _kind: EventKind, _ctx: FrameCtx) {}

    /// No-op span (recorder compiled out).
    #[inline(always)]
    pub fn span(_point: TracePoint) -> TraceSpan {
        TraceSpan
    }

    /// Always empty (recorder compiled out).
    #[inline(always)]
    pub fn snapshot_events() -> Vec<TraceEvent> {
        Vec::new()
    }
}

#[cfg(not(feature = "trace"))]
pub use stub::{
    clear_context, context, emit, emit_for, set_context, snapshot_events, span, TraceSpan,
};

#[cfg(not(feature = "trace"))]
fn ticks_per_us_live() -> f64 {
    1.0
}

#[cfg(not(feature = "trace"))]
fn armed_impl() -> bool {
    false
}

#[cfg(not(feature = "trace"))]
fn set_armed_impl(_on: bool) {}

/// Whether the flight recorder is compiled in (`trace` cargo feature).
#[inline(always)]
pub const fn recording_enabled() -> bool {
    cfg!(feature = "trace")
}

/// Whether the recorder is currently armed (recording and capturing).
/// Always `false` when compiled out.
#[inline]
pub fn armed() -> bool {
    armed_impl()
}

/// Arm or disarm the recorder at runtime (armed by default when compiled
/// in). Disarming stops both event recording and dump capture — the
/// in-process overhead knob `bench_gate --mode trace` measures against.
pub fn set_armed(on: bool) {
    set_armed_impl(on)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tsc: u64, frame: u64, thread: u16, point: TracePoint, kind: EventKind) -> TraceEvent {
        TraceEvent { tsc, frame, thread, point, kind, client: 1, shard: 0, tier: 0 }
    }

    #[test]
    fn point_codes_roundtrip_and_names_unique() {
        let mut names = Vec::new();
        for code in 0..TracePoint::COUNT as u16 {
            let p = TracePoint::from_code(code).expect("dense codes");
            assert_eq!(p.code(), code);
            names.push(p.name());
        }
        assert_eq!(TracePoint::from_code(TracePoint::COUNT as u16), None);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TracePoint::COUNT);
    }

    #[test]
    fn assembler_pairs_spans_and_orders_frames() {
        let plan = TracePoint::Stage(Stage::Plan);
        let events = vec![
            ev(50, 2, 0, TracePoint::Submit, EventKind::Instant),
            ev(10, 1, 0, TracePoint::Submit, EventKind::Instant),
            ev(20, 1, 0, plan, EventKind::Begin),
            ev(30, 1, 0, plan, EventKind::End),
            ev(35, 1, 1, TracePoint::Detect, EventKind::Begin),
            ev(45, 1, 1, TracePoint::Detect, EventKind::End),
            ev(60, 2, 0, plan, EventKind::Begin), // unmatched: closes at last tick
            ev(70, 2, 1, TracePoint::Deliver, EventKind::Instant),
        ];
        let tls = assemble(&events);
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].frame, 1);
        assert_eq!(tls[1].frame, 2);
        let t1 = &tls[0];
        assert_eq!(t1.spans.len(), 2);
        assert_eq!(t1.spans[0].point, plan);
        assert_eq!((t1.spans[0].begin, t1.spans[0].end), (20, 30));
        assert_eq!(t1.spans[1].point, TracePoint::Detect);
        assert!(t1.has_point(TracePoint::Submit));
        assert_eq!(t1.first_tsc(plan), Some(20));
        let t2 = &tls[1];
        assert_eq!(t2.spans.len(), 1);
        assert_eq!((t2.spans[0].begin, t2.spans[0].end), (60, 70));
        assert_eq!(t2.begin, 50);
        assert_eq!(t2.end, 70);
    }

    #[test]
    fn no_frame_events_stay_out_of_timelines() {
        let events = vec![
            ev(10, NO_FRAME, 0, TracePoint::Refuse, EventKind::Instant),
            ev(20, 7, 0, TracePoint::Submit, EventKind::Instant),
        ];
        let tls = assemble(&events);
        assert_eq!(tls.len(), 1);
        assert_eq!(tls[0].frame, 7);
    }

    #[test]
    fn chrome_export_mentions_every_point_and_trigger() {
        let plan = TracePoint::Stage(Stage::Plan);
        let events = vec![
            ev(10, 1, 0, TracePoint::Submit, EventKind::Instant),
            ev(20, 1, 0, plan, EventKind::Begin),
            ev(30, 1, 0, plan, EventKind::End),
            ev(40, NO_FRAME, 1, TracePoint::Fault, EventKind::Instant),
        ];
        let dump = TraceDump::from_events(Trigger::DeadlineMiss, 1, 0, 0, 1.0, events);
        let json = chrome_trace_json(&dump);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"submit\""));
        assert!(json.contains("\"name\":\"plan\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"fault\""));
        assert!(json.contains("\"name\":\"trigger:deadline_miss\""));
        assert!(json.contains("\"name\":\"frame 1 client 1\""));
    }

    #[test]
    fn trigger_counts_accumulate() {
        let before = trigger_counts();
        trigger(Trigger::Manual, NO_FRAME);
        trigger(Trigger::Manual, NO_FRAME);
        let after = trigger_counts();
        assert_eq!(
            after[Trigger::Manual.index()] - before[Trigger::Manual.index()],
            2,
            "manual triggers must count even without a capture"
        );
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_build_erases_recorder() {
        assert!(!recording_enabled());
        assert!(!armed());
        assert_eq!(std::mem::size_of::<TraceSpan>(), 0);
        set_context(FrameCtx { frame: 3, client: 0, shard: 0, tier: 0 });
        emit(TracePoint::Submit);
        let s = span(TracePoint::Detect);
        drop(s);
        clear_context();
        assert!(snapshot_events().is_empty());
        assert!(!trigger(Trigger::Manual, 3));
        assert_eq!(dump_count(), 0);
    }

    /// The live tests toggle process-global state (armed flag, dump
    /// buffer); serialize them.
    #[cfg(feature = "trace")]
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[cfg(feature = "trace")]
    #[test]
    fn live_recorder_roundtrips_events_and_dumps() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(true);
        clear_dumps();
        set_min_dump_gap_ms(0);
        // No context → nothing recorded from `emit`.
        clear_context();
        emit(TracePoint::Submit);
        // With context, events land and snapshot.
        set_context(FrameCtx { frame: 41, client: 2, shard: 1, tier: 0 });
        emit(TracePoint::Submit);
        {
            let _s = span(TracePoint::Detect);
        }
        clear_context();
        let events = snapshot_events();
        let ours: Vec<_> = events.iter().filter(|e| e.frame == 41).collect();
        assert_eq!(ours.len(), 3, "submit + detect begin/end");
        assert!(ours.iter().all(|e| e.client == 2 && e.shard == 1));
        // Trigger captures a dump containing the frame's timeline.
        assert!(trigger(Trigger::Manual, 41));
        let dumps = recent_dumps();
        assert!(dumps.iter().any(|d| d.trigger == Trigger::Manual
            && d.timelines.iter().any(|t| t.frame == 41 && t.has_point(TracePoint::Detect))));
        set_min_dump_gap_ms(200);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn disarmed_recorder_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(false);
        set_context(FrameCtx { frame: 999_999, client: 0, shard: 0, tier: 0 });
        emit(TracePoint::Submit);
        let s = span(TracePoint::Detect);
        drop(s);
        clear_context();
        set_armed(true);
        let events = snapshot_events();
        assert!(events.iter().all(|e| e.frame != 999_999));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn retention_is_bounded() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(true);
        clear_dumps();
        set_min_dump_gap_ms(0);
        set_context(FrameCtx { frame: 7, client: 0, shard: 0, tier: 0 });
        emit(TracePoint::Submit);
        clear_context();
        for _ in 0..(RETAIN_DUMPS + 4) {
            trigger(Trigger::Manual, 7);
        }
        assert!(dump_count() <= RETAIN_DUMPS);
        set_min_dump_gap_ms(200);
    }
}
