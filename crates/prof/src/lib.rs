//! Stage-attributed cycle profiling for the Geosphere receive chain.
//!
//! The paper's processing-rate-scalability argument turns every further
//! optimisation into a measurement problem: a perf PR must *name* the
//! stage it attacks. This crate is the measurement substrate — a
//! near-zero-overhead per-thread counter table keyed by the fixed
//! [`Stage`] taxonomy, recording **cycles** (TSC on `x86_64`, a monotonic
//! nanosecond clock elsewhere), **invocations**, and **bytes** per stage.
//!
//! # Attribution model: exclusive (self) time
//!
//! Scopes nest, but cycles never double-count. Each thread keeps a small
//! scope stack; entering a scope first attributes the time elapsed since
//! the last attribution point to the *enclosing* scope's stage, then
//! switches attribution to the new stage. Dropping the guard attributes
//! the remainder and resumes the parent. The result is a flat table whose
//! per-stage cycles **partition** the instrumented wall time — summing
//! the table never exceeds the measured envelope, and "coverage" (table
//! total ÷ wall clock) directly measures how much of the pipeline the
//! scopes reach.
//!
//! # Compile-time erasure
//!
//! Everything is gated on the `profile` cargo feature. With the feature
//! off (the default), [`ScopeGuard`] is a unit struct, [`scope`] and
//! [`record`] are empty `#[inline(always)]` functions, and [`snapshot`]
//! returns an all-zero table — the receive chain compiles to exactly the
//! same code as before this crate existed. A zero-size type assertion in
//! the workspace test suite pins this.
//!
//! # Threading
//!
//! Counters are plain `AtomicU64`s written single-writer (each thread
//! owns its table; updates are `Relaxed` load+store, not RMW) and read by
//! [`snapshot`], which sums every table ever registered — including
//! threads that have since exited, so per-frame attribution survives the
//! `ShardedDetectionPool` handoff: cycles a shard worker spent on a
//! frame's jobs are in the global table even after the pool is dropped.
//!
//! Besides the feature-gated stage profiler, the crate hosts the
//! **always-compiled** [`hist`] module: zero-allocation log-bucketed
//! latency histograms ([`hist::LogHistogram`]) that the streaming
//! runtime's telemetry tier records into on the hot path and the
//! `gs-telemetry` Prometheus endpoint merges at scrape time — and the
//! [`trace`] module: the per-frame flight recorder (per-thread event
//! rings, anomaly-triggered dumps, Chrome trace-event export) gated on
//! the `trace` cargo feature with the same erasure discipline.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// The fixed stage taxonomy. One variant per named category of the
/// receive chain; the discriminant is the row index in the counter table.
///
/// The taxonomy is deliberately closed (no string keys): a fixed enum
/// keeps the per-thread table a flat array and makes the `bench_gate`
/// dump stable across runs and machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Frame planning: payload draws, transmit chains, channel refresh,
    /// per-job assembly, noise (`plan_uplink_frame_into`).
    Plan = 0,
    /// Householder QR / sorted QR factorisations (`gs-linalg`).
    QrDecompose,
    /// `Qᴴ·y` rotations of received vectors into the triangular frame.
    Rotate,
    /// The sphere-search loop proper: level opening, child stepping,
    /// radius shrinking (`engine.rs`), excluding nested kernel scopes.
    Enumerate,
    /// Batched SoA kernel invocations (`ped_soa`, multi-symbol dots).
    PedKernel,
    /// Linear/SIC/PIC filter builds through `FilterCache`.
    Filter,
    /// Detection scatter: routing per-job symbol vectors into per-client
    /// assembly slots (`begin_detection_assembly` / `absorb_detection`).
    Scatter,
    /// The per-client receive chain (demap, deinterleave, depuncture,
    /// descramble) excluding the nested Viterbi/CRC scopes.
    Recover,
    /// Viterbi decoding (hard, erasure-aware, and soft paths).
    Viterbi,
    /// CRC-32 computation and verification.
    Crc,
    /// Time detection tasks spend queued in a worker pool between submit
    /// and pop (wall time, recorded via [`record`] on the popping thread).
    Queue,
    /// Streaming-runtime delivery: completion queue, in-order parking.
    Delivery,
}

impl Stage {
    /// Number of stages (rows in the counter table).
    pub const COUNT: usize = 12;
    /// Every stage, in table order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Plan,
        Stage::QrDecompose,
        Stage::Rotate,
        Stage::Enumerate,
        Stage::PedKernel,
        Stage::Filter,
        Stage::Scatter,
        Stage::Recover,
        Stage::Viterbi,
        Stage::Crc,
        Stage::Queue,
        Stage::Delivery,
    ];

    /// Row index of this stage in the table (`0..COUNT`).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used by the `bench_gate` dump and JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::QrDecompose => "qr_decompose",
            Stage::Rotate => "rotate",
            Stage::Enumerate => "enumerate",
            Stage::PedKernel => "ped_kernel",
            Stage::Filter => "filter",
            Stage::Scatter => "scatter",
            Stage::Recover => "recover",
            Stage::Viterbi => "viterbi",
            Stage::Crc => "crc",
            Stage::Queue => "queue",
            Stage::Delivery => "delivery",
        }
    }
}

/// Aggregated counters for one stage, as returned by [`snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageRecord {
    /// The stage this row describes.
    pub stage: Stage,
    /// Exclusive (self) ticks attributed to the stage. Ticks are TSC
    /// cycles on `x86_64`, monotonic nanoseconds elsewhere; convert with
    /// [`ticks_per_sec`].
    pub cycles: u64,
    /// Number of scope entries / explicit records for the stage.
    pub invocations: u64,
    /// Bytes attributed to the stage (payloads drawn, slabs walked,
    /// bits decoded — whatever the instrumented site declared).
    pub bytes: u64,
}

/// A point-in-time aggregate of every thread's counter table.
///
/// Counters are monotone, so two snapshots bracket a region of interest:
/// `after.delta(&before)` is the profile of exactly that region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageProfile {
    /// One record per [`Stage`], in [`Stage::ALL`] order.
    pub stages: [StageRecord; Stage::COUNT],
}

impl StageProfile {
    /// An all-zero profile (also what [`snapshot`] returns with the
    /// `profile` feature off).
    pub fn empty() -> Self {
        StageProfile {
            stages: Stage::ALL.map(|stage| StageRecord {
                stage,
                cycles: 0,
                invocations: 0,
                bytes: 0,
            }),
        }
    }

    /// Sum of self-ticks across all stages.
    pub fn total_cycles(&self) -> u64 {
        self.stages.iter().map(|r| r.cycles).sum()
    }

    /// True when no stage recorded anything (profiling off or unused).
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|r| r.cycles == 0 && r.invocations == 0 && r.bytes == 0)
    }

    /// Per-stage difference `self − earlier` (saturating), for bracketing
    /// a region between two snapshots.
    pub fn delta(&self, earlier: &StageProfile) -> StageProfile {
        let mut out = StageProfile::empty();
        for (o, (a, b)) in out.stages.iter_mut().zip(self.stages.iter().zip(earlier.stages.iter()))
        {
            o.cycles = a.cycles.saturating_sub(b.cycles);
            o.invocations = a.invocations.saturating_sub(b.invocations);
            o.bytes = a.bytes.saturating_sub(b.bytes);
        }
        out
    }

    /// The stage with the most self-ticks (the "profiler-named top
    /// stage"), or `None` on an empty profile.
    pub fn top_stage(&self) -> Option<Stage> {
        self.stages.iter().filter(|r| r.cycles > 0).max_by_key(|r| r.cycles).map(|r| r.stage)
    }
}

pub mod hist;
pub mod trace;

#[cfg(any(feature = "profile", feature = "trace"))]
mod clock;

#[cfg(feature = "profile")]
mod enabled;

#[cfg(feature = "profile")]
pub use enabled::{record, scope, snapshot, ticks, ticks_per_sec, ScopeGuard};

#[cfg(not(feature = "profile"))]
mod disabled {
    use super::{Stage, StageProfile};

    /// Scope handle. With the `profile` feature off this is a unit struct
    /// — the zero-size assertion in the workspace tests pins that the
    /// instrumentation erases completely.
    #[derive(Debug, Default)]
    #[must_use = "a profiling scope measures until dropped"]
    pub struct ScopeGuard;

    impl ScopeGuard {
        /// No-op byte attribution.
        #[inline(always)]
        pub fn add_bytes(&self, _n: u64) {}
    }

    /// No-op scope (profiling compiled out).
    #[inline(always)]
    pub fn scope(_stage: Stage) -> ScopeGuard {
        ScopeGuard
    }

    /// No-op explicit attribution (profiling compiled out).
    #[inline(always)]
    pub fn record(_stage: Stage, _cycles: u64, _invocations: u64, _bytes: u64) {}

    /// Always zero with profiling compiled out (so `ticks()` deltas and
    /// the [`record`] calls built from them vanish).
    #[inline(always)]
    pub fn ticks() -> u64 {
        0
    }

    /// Tick rate placeholder; `1.0` keeps conversions finite.
    #[inline(always)]
    pub fn ticks_per_sec() -> f64 {
        1.0
    }

    /// All-zero profile (profiling compiled out).
    #[inline(always)]
    pub fn snapshot() -> StageProfile {
        StageProfile::empty()
    }
}

#[cfg(not(feature = "profile"))]
pub use disabled::{record, scope, snapshot, ticks, ticks_per_sec, ScopeGuard};

/// Whether stage profiling is compiled in (`profile` cargo feature).
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "profile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_names_unique() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn empty_profile_reports_empty() {
        let p = StageProfile::empty();
        assert!(p.is_empty());
        assert_eq!(p.total_cycles(), 0);
        assert_eq!(p.top_stage(), None);
    }

    #[test]
    fn delta_subtracts_per_stage() {
        let mut a = StageProfile::empty();
        let mut b = StageProfile::empty();
        a.stages[Stage::Plan.index()].cycles = 100;
        a.stages[Stage::Plan.index()].invocations = 7;
        b.stages[Stage::Plan.index()].cycles = 40;
        b.stages[Stage::Plan.index()].invocations = 3;
        let d = a.delta(&b);
        assert_eq!(d.stages[Stage::Plan.index()].cycles, 60);
        assert_eq!(d.stages[Stage::Plan.index()].invocations, 4);
        assert_eq!(d.top_stage(), Some(Stage::Plan));
    }

    #[cfg(not(feature = "profile"))]
    #[test]
    fn disabled_build_erases_scopes() {
        assert_eq!(std::mem::size_of::<ScopeGuard>(), 0);
        assert!(!enabled());
        let g = scope(Stage::Enumerate);
        g.add_bytes(1024);
        drop(g);
        record(Stage::Queue, 123, 1, 0);
        assert_eq!(ticks(), 0);
        assert!(snapshot().is_empty());
    }
}
