//! HDR-style log-bucketed latency histograms for the telemetry tier.
//!
//! [`LogHistogram`] is the hot-path recording surface: a fixed-size array
//! of relaxed `AtomicU64` bucket counters, preallocated at construction,
//! so [`LogHistogram::record`] is an index computation plus a handful of
//! atomic increments — **zero heap allocations**, no locks, safe to call
//! from every pipeline thread concurrently (`tests/alloc_regression.rs`
//! pins the claim). Buckets are logarithmic with [`SUB_BITS`] linear
//! sub-buckets per octave, so any recorded value lands in a bucket whose
//! width is at most `1/2^SUB_BITS` of its magnitude — quantiles read back
//! from the buckets carry ≤ ~6% relative error while the whole table
//! stays under 8 KiB.
//!
//! [`HistogramSnapshot`] is the scrape-time view: an owned copy of the
//! bucket counts that merges ([`HistogramSnapshot::merge`] preserves
//! totals exactly — proptested in the workspace suite) and answers
//! quantile queries. Recording and scraping never contend: a snapshot is
//! a relaxed read pass over the counters.
//!
//! Values are plain `u64`s; the streaming runtime records **nanoseconds**
//! (see [`LogHistogram::record_duration`]), but nothing in the bucket
//! math assumes a unit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-bucket bits per octave: 2^4 = 16 sub-buckets, bounding the
/// relative bucket width (and thus quantile error) at 1/16.
pub const SUB_BITS: u32 = 4;

const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: indices `0..SUB` are exact small values, then 16
/// sub-buckets per octave up to `u64::MAX` (exponent 63).
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB as usize;

/// The bucket index a value lands in. Monotone and total over `u64`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & (SUB - 1);
        ((((exp - SUB_BITS) as usize) + 1) << SUB_BITS) + sub as usize
    }
}

/// Inclusive lower bound of bucket `i` (the inverse of [`bucket_index`]).
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let exp = (i >> SUB_BITS) + u64::from(SUB_BITS) - 1;
        let sub = i & (SUB - 1);
        (1u64 << exp) | (sub << (exp - u64::from(SUB_BITS)))
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// A concurrent log-bucketed histogram: fixed bucket array, relaxed
/// atomic counters, allocation-free recording. See the module docs.
#[derive(Debug)]
pub struct LogHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram with every bucket preallocated (the one and
    /// only allocation this type ever makes).
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Allocation-free, lock-free, callable from any
    /// thread; counters are relaxed (scrapes see a consistent-enough view
    /// — each counter individually monotone). The running `sum` is a
    /// plain wrapping add: with nanosecond values it stays exact until
    /// ~585 years of *accumulated* latency, which is treated as out of
    /// domain rather than paid for with a CAS loop on the hot path.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// [`LogHistogram::record`] of a duration in **nanoseconds**
    /// (saturating at `u64::MAX` ≈ 585 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// An owned point-in-time copy of the counters (allocates — a scrape
    /// call, not a hot-path one).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            // Derive the total from the copied buckets rather than the
            // separate counter so the snapshot is self-consistent even
            // when racing concurrent recorders.
            total: counts.iter().sum(),
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned histogram snapshot: mergeable, queryable, inert. Produced by
/// [`LogHistogram::snapshot`], consumed by the telemetry renderer and the
/// bench dumps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An all-zero snapshot (the identity of [`HistogramSnapshot::merge`]).
    pub fn empty() -> Self {
        HistogramSnapshot { counts: vec![0; BUCKETS], total: 0, sum: 0, max: 0 }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values (nanoseconds on the runtime's histograms).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest value recorded, exact (not bucket-rounded); `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Folds `other` into `self` bucket by bucket. Exact: counts, totals,
    /// and sums add; max takes the larger (the merge of the underlying
    /// value streams would report exactly these).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (`0.0..=1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q · total)`,
    /// clamped to the exact observed max. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        // Index/low round-trip across octave edges and the linear range.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i, "low of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let probes =
            [0u64, 1, 15, 16, 17, 31, 32, 1023, 1024, 1 << 20, (1 << 20) + 7, u64::MAX - 1];
        for w in probes.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]));
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in SUB as usize..BUCKETS - 1 {
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            let width = (hi - lo) as f64;
            assert!(width <= lo as f64 / (SUB as f64 - 1.0) + 1.0, "bucket {i} too wide");
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs..1ms in ns
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1_000_000);
        let p50 = s.quantile(0.5) as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.08, "p50 {p50} vs exact 500000");
        let p99 = s.quantile(0.99) as f64;
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.08, "p99 {p99} vs exact 990000");
        assert_eq!(s.quantile(1.0), 1_000_000, "p100 is the exact max");
    }

    #[test]
    fn merge_is_exact() {
        let (a, b) = (LogHistogram::new(), LogHistogram::new());
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1_000_000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.sum(), a.snapshot().sum() + b.snapshot().sum());
        assert_eq!(m.max(), 99_000_000);
        let mut id = HistogramSnapshot::empty();
        id.merge(&m);
        assert_eq!(id, m, "empty is the merge identity");
    }
}
