//! Property suite for the streaming runtime: bit-identity with the serial
//! receive path, and the steady-state zero-allocation contract.
//!
//! **Bit-identity.** For any (client count, per-frame payload lengths,
//! worker count, shard count, channel selectivity, deadline assignment,
//! submission interleaving), every frame delivered by
//! [`gs_runtime::FrameStream`] must be bit-identical — CRC verdicts,
//! operation counts, detection counts — to serial
//! [`gs_phy::decode_frame_batched_into`] decoding the same
//! [`gs_runtime::UplinkFrame`] (same seed, same channel), and each
//! client's frames must arrive in submission order. Scenarios are sampled
//! through the proptest [`Strategy`] machinery. The same contract holds
//! per detector tier: an adaptive stream pinned to any single rung of the
//! default ladder matches serial decoding with that rung's detector.
//!
//! **Zero steady-state allocations.** With the pipeline full and every
//! slot warmed, pushing further frames end to end (submit → plan → sharded
//! detect → recover → recv) performs **zero heap allocations across all
//! threads**, extending PR 3's frame-chain discipline to the streaming
//! engine.
//!
//! Like `tests/alloc_regression.rs`, this file holds a **single
//! `#[test]`**: the allocation case counts process-wide (the stage and
//! shard worker threads must be measured), which is only sound while no
//! sibling test allocates concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Armed around regions where **every** thread's allocations count.
static COUNT_ALL_THREADS: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter update has no other
// side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNT_ALL_THREADS.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNT_ALL_THREADS.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during_all_threads<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNT_ALL_THREADS.store(true, Ordering::SeqCst);
    let result = f();
    COUNT_ALL_THREADS.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

use geosphere_core::{geosphere_decoder, DetectorTier, FsdDetector, MmseDetector};
use gs_channel::{
    noise_variance_for_snr_db, ChannelModel, MimoChannel, RayleighChannel, SelectiveRayleighChannel,
};
use gs_modulation::Constellation;
use gs_phy::{decode_frame_batched_into, FrameWorkspace, PhyConfig, UplinkOutcome};
use gs_runtime::{DetectorLadder, FrameStream, PinnedPolicy, StreamConfig, UplinkFrame};
use proptest::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One randomized streaming scenario.
#[derive(Debug)]
struct Scenario {
    clients: usize,
    frames_per_client: usize,
    workers: usize,
    shards: usize,
    capacity: usize,
    selective: bool,
    /// Drives payload lengths, deadlines, channel draws, interleaving.
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (1usize..4, 1usize..4, 1usize..5, 1usize..4, (0u64..1_000_000, 0usize..2)).prop_map(
        |(clients, frames_per_client, workers, shards, (seed, sel))| Scenario {
            clients,
            frames_per_client,
            workers,
            shards,
            // Small capacities force slot recycling mid-scenario.
            capacity: 2 + (seed % 3) as usize,
            selective: sel == 1,
            seed,
        },
    )
}

const PAYLOAD_CHOICES: [usize; 3] = [128, 256, 384];

fn base_cfg() -> PhyConfig {
    PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) }
}

fn outcome_key(out: &UplinkOutcome) -> (Vec<bool>, geosphere_core::DetectorStats, u64) {
    (out.client_ok.clone(), out.stats, out.detections)
}

/// Checks one scenario: build the interleaved submission schedule, decode
/// it serially as the reference, stream it, compare per client.
fn check_stream_matches_serial(sc: &Scenario) {
    let cfg = base_cfg();
    let mut rng = StdRng::seed_from_u64(sc.seed);

    // Channel realizations (flat or frequency-selective), shared by Arc.
    let channels: Vec<Arc<MimoChannel>> = (0..3)
        .map(|_| {
            Arc::new(if sc.selective {
                SelectiveRayleighChannel {
                    n_fft: 64,
                    n_subcarriers: cfg.n_subcarriers,
                    ..SelectiveRayleighChannel::indoor(4, 2)
                }
                .realize(&mut rng)
            } else {
                RayleighChannel::new(4, 2).realize(&mut rng)
            })
        })
        .collect();

    // Per-client frame lists with varying payload lengths and sprinkled
    // deadlines (deadlines shuffle shard-queue order; they must not change
    // any output bit).
    let now = Instant::now();
    let per_client: Vec<Vec<UplinkFrame>> = (0..sc.clients)
        .map(|client| {
            (0..sc.frames_per_client)
                .map(|k| {
                    let mut f = UplinkFrame::new(
                        client,
                        Arc::clone(&channels[rng.gen_range(0..channels.len())]),
                        14.0 + rng.gen_range(0.0..14.0),
                        rng.gen::<u64>(),
                    );
                    f.payload_bits = Some(PAYLOAD_CHOICES[rng.gen_range(0..PAYLOAD_CHOICES.len())]);
                    if rng.gen_bool(0.5) {
                        f.deadline = Some(now + Duration::from_micros(rng.gen_range(1..50_000u64)));
                    }
                    let _ = k;
                    f
                })
                .collect()
        })
        .collect();

    // Serial reference, per client in submission order, through one
    // recycled workspace (itself proven shape-safe by
    // tests/frame_workspace_reuse.rs).
    let det = geosphere_decoder();
    let mut ws = FrameWorkspace::new();
    let reference: Vec<Vec<_>> = per_client
        .iter()
        .map(|frames| {
            frames
                .iter()
                .map(|f| {
                    let fcfg = PhyConfig {
                        payload_bits: f.payload_bits.unwrap_or(cfg.payload_bits),
                        ..cfg
                    };
                    let mut frng = StdRng::seed_from_u64(f.seed);
                    outcome_key(decode_frame_batched_into(
                        &fcfg, &f.channel, &det, f.snr_db, &mut frng, 1, &mut ws,
                    ))
                })
                .collect()
        })
        .collect();

    // Random interleaving of the per-client queues into one submission
    // sequence.
    let mut schedule: Vec<UplinkFrame> = Vec::new();
    let mut heads: Vec<usize> = vec![0; sc.clients];
    let total = sc.clients * sc.frames_per_client;
    while schedule.len() < total {
        let candidates: Vec<usize> =
            (0..sc.clients).filter(|&c| heads[c] < per_client[c].len()).collect();
        let c = candidates[rng.gen_range(0..candidates.len())];
        schedule.push(per_client[c][heads[c]].clone());
        heads[c] += 1;
    }
    drop(per_client);

    let mut stream_sc = StreamConfig::new(sc.clients);
    stream_sc.workers = sc.workers;
    stream_sc.shards = sc.shards;
    stream_sc.capacity = sc.capacity;
    let stream = FrameStream::new(cfg, det, stream_sc);

    let mut got: Vec<Vec<_>> = vec![Vec::new(); sc.clients];
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for f in &schedule {
                stream.submit(f.clone()).expect("stream died mid-submit");
            }
        });
        for _ in 0..total {
            let done = stream.recv().expect("stream died mid-drain");
            let client = done.client();
            assert_eq!(
                done.seq() as usize,
                got[client].len(),
                "{sc:?}: client {client} frames out of order"
            );
            got[client].push(outcome_key(done.outcome()));
        }
    });

    assert_eq!(got, reference, "{sc:?}: streamed outputs diverge from serial decode");
    let stats = stream.stats();
    assert_eq!(stats.completed, total as u64, "{sc:?}");
    assert_eq!(stats.in_flight, 0, "{sc:?}: all slots released");
}

/// Pinned-tier bit-identity: with the control plane pinned to a single
/// rung, an adaptive stream over the default ladder must be bit-identical
/// to serial decoding with that rung's own detector — the determinism
/// guarantee holds per tier, not just for the sphere default. Also checks
/// the tier stamp on the completion and the outcome.
fn check_pinned_tiers_match_serial() {
    let cfg = base_cfg();
    let snr_db = 18.0;
    let sigma2 = noise_variance_for_snr_db(snr_db);
    let mut rng = StdRng::seed_from_u64(0x71E7);
    let channels: Vec<Arc<MimoChannel>> =
        (0..3).map(|_| Arc::new(RayleighChannel::new(4, 2).realize(&mut rng))).collect();
    let frames: Vec<UplinkFrame> = (0..8)
        .map(|k| {
            let mut f = UplinkFrame::new(
                0,
                Arc::clone(&channels[k % channels.len()]),
                snr_db,
                7_000 + k as u64,
            );
            f.payload_bits = Some(PAYLOAD_CHOICES[k % PAYLOAD_CHOICES.len()]);
            f
        })
        .collect();

    let mut ws = FrameWorkspace::new();
    for tier in DetectorTier::ALL {
        // Serial reference through the rung's own concrete detector.
        let reference: Vec<_> = frames
            .iter()
            .map(|f| {
                let fcfg =
                    PhyConfig { payload_bits: f.payload_bits.unwrap_or(cfg.payload_bits), ..cfg };
                let mut frng = StdRng::seed_from_u64(f.seed);
                match tier {
                    DetectorTier::Sphere => outcome_key(decode_frame_batched_into(
                        &fcfg,
                        &f.channel,
                        &geosphere_decoder(),
                        f.snr_db,
                        &mut frng,
                        1,
                        &mut ws,
                    )),
                    DetectorTier::Fsd => outcome_key(decode_frame_batched_into(
                        &fcfg,
                        &f.channel,
                        &FsdDetector::new(),
                        f.snr_db,
                        &mut frng,
                        1,
                        &mut ws,
                    )),
                    DetectorTier::Mmse => outcome_key(decode_frame_batched_into(
                        &fcfg,
                        &f.channel,
                        &MmseDetector::new(sigma2),
                        f.snr_db,
                        &mut frng,
                        1,
                        &mut ws,
                    )),
                }
            })
            .collect();

        let mut stream_sc = StreamConfig::new(1);
        stream_sc.workers = 2;
        stream_sc.shards = 2;
        stream_sc.capacity = 3;
        let stream = FrameStream::adaptive(
            cfg,
            DetectorLadder::geosphere_default(sigma2),
            PinnedPolicy(tier),
            stream_sc,
        );

        let mut got = Vec::with_capacity(frames.len());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for f in &frames {
                    stream.submit(f.clone()).expect("stream died mid-submit");
                }
            });
            for _ in 0..frames.len() {
                let done = stream.recv().expect("stream died mid-drain");
                assert_eq!(done.seq() as usize, got.len(), "{tier:?}: frames out of order");
                assert_eq!(done.tier(), tier, "{tier:?}: completion mis-stamped");
                assert_eq!(done.outcome().tier, tier, "{tier:?}: outcome mis-stamped");
                got.push(outcome_key(done.outcome()));
            }
        });
        assert_eq!(got, reference, "{tier:?}: pinned stream diverges from serial decode");
        let stats = stream.stats();
        assert_eq!(stats.tier_admissions[tier.index()], frames.len() as u64, "{tier:?}");
        assert_eq!(stats.current_tier, tier);
    }
}

/// Steady-state allocation case: with every slot and worker warmed and the
/// pipeline kept full, a frame costs zero allocations end to end, on every
/// thread.
fn assert_stream_steady_state_allocation_free() {
    let cfg = base_cfg();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let channels: Vec<Arc<MimoChannel>> =
        (0..2).map(|_| Arc::new(RayleighChannel::new(4, 2).realize(&mut rng))).collect();

    let mut stream_sc = StreamConfig::new(2);
    stream_sc.workers = 2;
    stream_sc.shards = 2;
    stream_sc.capacity = 3;
    let stream = FrameStream::new(cfg, geosphere_decoder(), stream_sc);

    // Keeps the pipeline full from a single thread: admit until refused,
    // then consume one and continue. Returns how many frames delivered OK.
    let drive = |first_seed: u64, n: usize| -> usize {
        let mut ok = 0;
        let mut submitted = 0usize;
        let mut received = 0usize;
        while received < n {
            if submitted < n {
                let f = UplinkFrame::new(
                    submitted % 2,
                    Arc::clone(&channels[submitted % 2]),
                    24.0,
                    first_seed + submitted as u64,
                );
                if stream.try_submit(f).is_ok() {
                    submitted += 1;
                    continue;
                }
                // Full: fall through to consume one.
            }
            let done = stream.recv().expect("stream died mid-drain");
            if done.outcome().client_ok.iter().all(|&b| b) {
                ok += 1;
            }
            received += 1;
        }
        ok
    };

    // Warmup: cycle every slot through the frame shape several times so
    // each slot's workspace, each shard's replica/output buffers, each
    // worker's search workspace, and every queue reach their high-water
    // marks.
    drive(1_000, 18);

    let (delta, ok) = allocations_during_all_threads(|| drive(2_000, 9));
    assert_eq!(
        delta, 0,
        "streaming pipeline allocated {delta} times across 9 warmed frames (pipeline full)"
    );
    assert!(ok > 0, "24 dB 16-QAM should deliver at least one frame");
}

#[test]
fn stream_is_deterministic_and_allocation_free() {
    // Part 1: randomized bit-identity scenarios (proptest Strategy
    // sampling; no shrinking in the offline shim, failures print the
    // scenario).
    let strat = scenario_strategy();
    let mut rng = StdRng::seed_from_u64(20140817);
    for case in 0..6 {
        let sc = strat.sample(&mut rng);
        eprintln!("stream_determinism case {case}: {sc:?}");
        check_stream_matches_serial(&sc);
    }

    // Part 2: pinned-tier bit-identity against each rung's own detector.
    check_pinned_tiers_match_serial();

    // Part 3: the steady-state allocation contract.
    assert_stream_steady_state_allocation_free();
}
