//! Flight-recorder timeline properties and Chrome-export schema, checked
//! on synthetic event streams.
//!
//! `assemble`, `TraceDump::from_events`, and `chrome_trace_json` are pure
//! functions over `TraceEvent` slices, so these tests run identically
//! with and without `--features trace` — they pin the assembler's causal
//! guarantees (begin before end, pipeline stages in pipeline order) and
//! the exporter's schema (parses as JSON, references only known trace
//! points and recorded threads) without needing the live recorder. The
//! JSON check uses a small recursive-descent parser because the offline
//! workspace has no serde.

use gs_prof::trace::{
    assemble, chrome_trace_json, EventKind, TraceDump, TraceEvent, TracePoint, Trigger,
    CONTROL_CHAIN, HARD_CHAIN, NO_FRAME, NO_SHARD, NO_TIER,
};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Synthetic frame streams
// ---------------------------------------------------------------------------

/// Per-frame shape knobs the property tests randomize.
#[derive(Clone, Debug)]
struct FrameShape {
    jitter: u64,
    gap: u64,
    worker: u16,
    shard: u16,
    parked: bool,
}

fn frame_shape_strategy() -> impl Strategy<Value = FrameShape> {
    (0u64..50, 1u64..40, 1u16..4, 0u16..8, any::<bool>()).prop_map(
        |(jitter, gap, worker, shard, parked)| FrameShape { jitter, gap, worker, shard, parked },
    )
}

/// Lays down one frame's causal event chain — the control instants and
/// the hard-chain spans in pipeline order with strictly increasing ticks —
/// on the threads the shape picks. Mirrors what the instrumented runtime
/// records for one healthy frame.
fn synth_frame(frame: u64, shape: &FrameShape, out: &mut Vec<TraceEvent>) {
    // Frames overlap in time (base advances by less than a frame's span),
    // like a pipelined stream.
    let mut t = 1_000 + frame * 120 + shape.jitter;
    let client = (frame % 4) as u32;
    let tier = (frame % 3) as u8;
    let mut ev = |tsc: u64, thread: u16, point: TracePoint, kind: EventKind, shard: u16| {
        out.push(TraceEvent { tsc, frame, thread, point, kind, client, shard, tier });
    };
    let step = |t: &mut u64| {
        *t += shape.gap;
        *t
    };
    // Control plane on the submit thread (0), then the shard worker, then
    // the recovery thread (worker + 8 keeps the ids disjoint).
    ev(t, 0, TracePoint::Submit, EventKind::Instant, NO_SHARD);
    ev(step(&mut t), 0, TracePoint::Admit, EventKind::Instant, NO_SHARD);
    ev(step(&mut t), 0, TracePoint::Stage(gs_prof::Stage::Plan), EventKind::Begin, NO_SHARD);
    ev(step(&mut t), 0, TracePoint::Stage(gs_prof::Stage::Plan), EventKind::End, NO_SHARD);
    ev(step(&mut t), 0, TracePoint::Enqueue, EventKind::Instant, shape.shard);
    ev(step(&mut t), shape.worker, TracePoint::Pop, EventKind::Instant, shape.shard);
    ev(step(&mut t), shape.worker, TracePoint::Detect, EventKind::Begin, shape.shard);
    ev(step(&mut t), shape.worker, TracePoint::Detect, EventKind::End, shape.shard);
    let rec = shape.worker + 8;
    let scatter = TracePoint::Stage(gs_prof::Stage::Scatter);
    ev(step(&mut t), rec, scatter, EventKind::Begin, NO_SHARD);
    ev(step(&mut t), rec, scatter, EventKind::End, NO_SHARD);
    if shape.parked {
        ev(step(&mut t), rec, TracePoint::Park, EventKind::Instant, NO_SHARD);
    }
    for stage in [gs_prof::Stage::Recover, gs_prof::Stage::Viterbi, gs_prof::Stage::Crc] {
        ev(step(&mut t), rec, TracePoint::Stage(stage), EventKind::Begin, NO_SHARD);
        ev(step(&mut t), rec, TracePoint::Stage(stage), EventKind::End, NO_SHARD);
    }
    ev(step(&mut t), rec, TracePoint::Deliver, EventKind::Instant, NO_SHARD);
}

/// Deterministic shuffle (splitmix-keyed) — the assembler must not depend
/// on ring snapshot order.
fn shuffle(events: &mut [TraceEvent], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..events.len()).rev() {
        events.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

fn synth_stream(shapes: &[FrameShape], seed: u64) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for (f, shape) in shapes.iter().enumerate() {
        synth_frame(f as u64, shape, &mut events);
    }
    // A couple of frameless stream events (admission refusals): these must
    // never appear in a per-frame timeline.
    for k in 0..2u64 {
        events.push(TraceEvent {
            tsc: 1_500 + 97 * k,
            frame: NO_FRAME,
            thread: 0,
            point: TracePoint::Refuse,
            kind: EventKind::Instant,
            client: (k % 4) as u32,
            shard: NO_SHARD,
            tier: NO_TIER,
        });
    }
    shuffle(&mut events, seed);
    events
}

/// First-occurrence ticks of `chain` points must be non-decreasing within
/// a timeline — the pipeline-order half of the causal contract.
fn assert_chain_ordered(tl: &gs_prof::trace::FrameTimeline, chain: &[TracePoint]) {
    let mut last: Option<(TracePoint, u64)> = None;
    for &point in chain {
        if let Some(tsc) = tl.first_tsc(point) {
            if let Some((prev_point, prev_tsc)) = last {
                assert!(
                    prev_tsc <= tsc,
                    "frame {}: {} at {} precedes {} at {} out of pipeline order",
                    tl.frame,
                    point.name(),
                    tsc,
                    prev_point.name(),
                    prev_tsc
                );
            }
            last = Some((point, tsc));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Timelines assembled from a shuffled synthetic stream are causally
    /// ordered: spans close after they open, the hard chain and the
    /// control chain both run in pipeline order, and frameless events are
    /// excluded.
    #[test]
    fn timelines_are_causally_ordered(
        shapes in proptest::collection::vec(frame_shape_strategy(), 1..6),
        seed in 0u64..1_000_000,
    ) {
        let events = synth_stream(&shapes, seed);
        let timelines = assemble(&events);

        prop_assert_eq!(timelines.len(), shapes.len());
        for (f, tl) in timelines.iter().enumerate() {
            prop_assert_eq!(tl.frame, f as u64);
            prop_assert!(tl.frame != NO_FRAME);
            prop_assert!(tl.begin <= tl.end);
            for s in &tl.spans {
                prop_assert!(s.begin <= s.end, "span {} begins after it ends", s.point.name());
                prop_assert!(tl.begin <= s.begin && s.end <= tl.end);
            }
            for i in &tl.instants {
                prop_assert!(tl.begin <= i.tsc && i.tsc <= tl.end);
            }
            assert_chain_ordered(tl, &HARD_CHAIN);
            assert_chain_ordered(tl, &CONTROL_CHAIN);
            // Every synthetic frame runs submit → delivery end to end.
            for point in CONTROL_CHAIN.iter().filter(|p| !matches!(p, TracePoint::Deliver)) {
                prop_assert!(tl.has_point(*point), "frame {} lost {}", f, point.name());
            }
            prop_assert!(tl.has_point(TracePoint::Deliver));
            for point in HARD_CHAIN {
                prop_assert!(tl.has_point(point), "frame {} lost {}", f, point.name());
            }
        }
    }

    /// The Chrome export of any synthetic dump parses as JSON and
    /// references only known trace points, recorded threads, and the
    /// frames in the dump (pid = frame + 1, pid 0 = stream strays).
    #[test]
    fn chrome_export_parses_and_references_known_names(
        shapes in proptest::collection::vec(frame_shape_strategy(), 1..5),
        seed in 0u64..1_000_000,
    ) {
        let events = synth_stream(&shapes, seed);
        let dump = TraceDump::from_events(Trigger::Manual, 0, 7, 0, 3.0, events.clone());
        let json = chrome_trace_json(&dump);
        let doc = parse_json(&json).expect("chrome export must parse as JSON");

        let mut allowed: HashSet<String> = (0..TracePoint::COUNT)
            .map(|c| TracePoint::from_code(c as u16).unwrap().name().to_string())
            .collect();
        allowed.insert("process_name".into());
        for t in Trigger::ALL {
            allowed.insert(format!("trigger:{}", t.name()));
        }
        let mut known_threads: HashSet<u64> = events.iter().map(|e| e.thread as u64).collect();
        known_threads.insert(0); // metadata + trigger rows
        let known_pids: HashSet<u64> =
            events.iter().map(|e| e.frame.wrapping_add(1)).chain([0]).collect();

        prop_assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let rows = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        prop_assert!(!rows.is_empty());
        let mut phases_seen = HashSet::new();
        for row in rows {
            let name = row.get("name").and_then(Json::as_str).expect("row name");
            prop_assert!(allowed.contains(name), "unknown event name {}", name);
            let ph = row.get("ph").and_then(Json::as_str).expect("row ph");
            prop_assert!(matches!(ph, "X" | "i" | "M"), "unknown phase {}", ph);
            phases_seen.insert(ph.to_string());
            let pid = row.get("pid").and_then(Json::as_num).expect("row pid") as u64;
            prop_assert!(known_pids.contains(&pid), "pid {} references no frame", pid);
            let tid = row.get("tid").and_then(Json::as_num).expect("row tid") as u64;
            prop_assert!(known_threads.contains(&tid), "tid {} references no thread", tid);
            match ph {
                "X" => {
                    prop_assert!(row.get("ts").and_then(Json::as_num).expect("ts") >= 0.0);
                    prop_assert!(row.get("dur").and_then(Json::as_num).expect("dur") >= 0.0);
                }
                "i" => {
                    prop_assert!(row.get("ts").and_then(Json::as_num).is_some());
                    prop_assert!(row.get("s").and_then(Json::as_str).is_some());
                }
                _ => prop_assert!(row.get("args").is_some(), "metadata row without args"),
            }
        }
        // Spans, instants, and process metadata must all be present.
        for ph in ["X", "i", "M"] {
            prop_assert!(phases_seen.contains(ph), "export carries no {} rows", ph);
        }
        // The trigger marker is always the last row.
        let last = rows.last().unwrap();
        prop_assert_eq!(last.get("name").and_then(Json::as_str), Some("trigger:manual"));
    }
}

/// Frameless events (admission refusals) never form a timeline but do
/// appear on the Chrome export's pid-0 "stream" track.
#[test]
fn frameless_events_stay_off_timelines_but_reach_the_stream_track() {
    let shapes = vec![FrameShape { jitter: 3, gap: 5, worker: 1, shard: 2, parked: false }];
    let events = synth_stream(&shapes, 42);
    let timelines = assemble(&events);
    assert_eq!(timelines.len(), 1);
    assert!(timelines.iter().all(|tl| tl.frame != NO_FRAME));

    let dump = TraceDump::from_events(Trigger::AdmissionRefusal, NO_FRAME, 0, 0, 3.0, events);
    let doc = parse_json(&chrome_trace_json(&dump)).expect("export parses");
    let rows = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let refusals: Vec<_> =
        rows.iter().filter(|r| r.get("name").and_then(Json::as_str) == Some("refuse")).collect();
    assert_eq!(refusals.len(), 2);
    for r in &refusals {
        assert_eq!(r.get("pid").and_then(Json::as_num), Some(0.0));
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON parser (test-side only; the workspace builds offline and
// has no serde). Accepts the standard grammar, enough to validate the
// exporter's output strictly.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end".into())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                b => {
                    // The exporter only emits ASCII, but accept UTF-8.
                    let s = &self.bytes[self.pos..];
                    let ch_len = match b {
                        0..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] found {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} found {:?}", other as char)),
            }
        }
    }
}
