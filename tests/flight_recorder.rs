//! End-to-end test of the per-frame flight recorder: drive real frames
//! with already-hopeless deadlines through the streaming runtime, let
//! every delivery fire the deadline-miss anomaly trigger, and check the
//! whole observability surface — trigger counters (maintained even when
//! the recorder is compiled out), the `/metrics` families, the dashboard
//! at `/`, the dump JSON at `/trace` — and, with `--features trace`, that
//! the retained dump's timeline covers the full submit→delivery causal
//! chain with every hard-chain stage, and that `/trace/latest` serves the
//! Chrome export.

use geosphere::channel::RayleighChannel;
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::PhyConfig;
use geosphere::prof::trace as gtrace;
use geosphere::runtime::{FrameStream, StreamConfig};
use geosphere::sim::{run_poisson_uplink, PoissonParams};
use geosphere::telemetry::{lint_exposition, scrape, MetricsServer};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 2;
const FRAMES_PER_CLIENT: usize = 12;

#[test]
fn deadline_misses_fire_the_recorder_and_surface_everywhere() {
    // Process-global recorder state: start from a clean slate and disable
    // dump rate limiting so every miss is eligible to capture.
    gtrace::clear_dumps();
    gtrace::set_min_dump_gap_ms(0);
    gtrace::set_armed(true);
    let triggers_before = gtrace::trigger_counts();

    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let stream = Arc::new(FrameStream::new(cfg, geosphere_decoder(), StreamConfig::new(CLIENTS)));
    let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&stream)).expect("bind");
    let model = RayleighChannel::new(4, 2);
    let params = PoissonParams {
        clients: CLIENTS,
        frames_per_client: FRAMES_PER_CLIENT,
        rate_hz: f64::INFINITY,
        snr_db: 24.0,
        // A deadline no frame can make: every delivery is a miss and every
        // miss pulls the anomaly trigger.
        deadline: Some(Duration::from_nanos(1)),
        seed: 1014,
    };
    let report = run_poisson_uplink(&stream, &model, &params);
    assert!(report.submitted > 0, "traffic must actually have flowed");
    assert_eq!(
        report.deadline_misses, report.submitted,
        "a 1 ns deadline must miss on every delivered frame"
    );

    // Trigger counters move regardless of the feature: they are the
    // always-on half of the anomaly surface.
    let triggers = gtrace::trigger_counts();
    let miss_idx = gtrace::Trigger::DeadlineMiss.index();
    let new_misses = triggers[miss_idx] - triggers_before[miss_idx];
    assert_eq!(new_misses, report.deadline_misses, "one trigger per missed deadline");

    // /metrics carries the trigger families (and still lints clean).
    let body = scrape(server.addr(), "/metrics").expect("scrape /metrics");
    let expo = lint_exposition(&body).expect("exposition lints clean");
    let scraped_misses = expo
        .value("gs_trace_triggers_total", &[("trigger", "deadline_miss")])
        .expect("deadline_miss trigger series");
    assert!(scraped_misses >= new_misses as f64);
    assert!(expo.value("gs_trace_dumps", &[]).is_some());
    let enabled = expo.value("gs_trace_recording_enabled", &[]).expect("recording gauge");
    assert_eq!(enabled != 0.0, gtrace::recording_enabled());

    // The dashboard and the dump endpoint are served either way.
    let dash = scrape(server.addr(), "/").expect("scrape /");
    assert!(dash.contains("Geosphere ops cockpit"), "dashboard page served at /");
    assert!(dash.contains("/trace"), "dashboard polls the trace endpoint");
    let trace_json = scrape(server.addr(), "/trace").expect("scrape /trace");
    assert!(trace_json.starts_with('{') && trace_json.ends_with('}'));
    assert!(trace_json.contains("\"deadline_miss\":"));

    #[cfg(feature = "trace")]
    {
        // The recorder is live: a deadline-missing run must retain a dump
        // whose timelines cover the whole causal chain.
        assert!(gtrace::dump_count() > 0, "misses must have captured at least one dump");
        let dumps = gtrace::recent_dumps();
        assert!(dumps.iter().any(|d| d.trigger == gtrace::Trigger::DeadlineMiss));

        // At least one frame's timeline must run submit → delivery with
        // every hard-chain stage in between (the dump snapshots whole
        // rings, so fully-recorded frames are guaranteed at this scale).
        let full_chain = dumps.iter().flat_map(|d| &d.timelines).find(|tl| {
            gtrace::CONTROL_CHAIN.iter().all(|p| tl.has_point(*p))
                && gtrace::HARD_CHAIN.iter().all(|p| tl.has_point(*p))
        });
        let tl = full_chain.expect("some timeline covers submit→delivery with all stages");
        // And causally: control chain in pipeline order.
        let ticks: Vec<u64> =
            gtrace::CONTROL_CHAIN.iter().map(|p| tl.first_tsc(*p).unwrap()).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "control chain out of order: {ticks:?}");

        // The JSON endpoints reflect the retained dumps.
        assert!(trace_json.contains("\"timelines\":"));
        assert!(trace_json.contains("\"deadline_miss\""));
        let chrome = scrape(server.addr(), "/trace/latest").expect("scrape /trace/latest");
        assert!(chrome.contains("\"traceEvents\":["), "chrome export served");
        assert!(chrome.contains("trigger:"), "chrome export carries the trigger marker");
    }
    #[cfg(not(feature = "trace"))]
    {
        // Compiled out: triggers count, but nothing is ever captured.
        assert_eq!(gtrace::dump_count(), 0);
        assert!(
            scrape(server.addr(), "/trace/latest").is_err(),
            "/trace/latest must 404 with no retained dumps"
        );
    }

    drop(server);
}
