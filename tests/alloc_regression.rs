//! Allocation regression guard for the detection hot path.
//!
//! The sphere-decoding stack promises **zero heap allocations per symbol
//! after warmup** when driven through a reused
//! [`SearchWorkspace`](geosphere_core::SearchWorkspace): enumerators are
//! reset in place per node visit, per-level state lives in slabs, QR
//! factors and rotation scratch are recomputed into reused storage, and
//! the batched path recycles its output buffers. This test enforces that
//! claim with a counting global allocator: warm the workspace up, snapshot
//! the allocation counter, run many detections, and require the counter
//! not to move.
//!
//! The counter is **thread-scoped**: it only counts while the measuring
//! thread has armed it, so allocations from the libtest harness thread (or
//! any other process housemate) cannot fail the assertion spuriously. The
//! thread-local flag is `const`-initialized, so reading it inside the
//! allocator never recurses through lazy TLS initialization.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

thread_local! {
    /// Armed only on the measuring thread, only around the measured region.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Armed around regions where **every** thread's allocations count — used
/// by the frame-chain case to also catch allocator traffic on the
/// persistent detection-pool workers. Only sound while nothing else in the
/// process allocates concurrently, which holds here: this file has a
/// single `#[test]`, so the only live threads are the libtest runner
/// (parked in `join`) and the pool workers under test.
static COUNT_ALL_THREADS: AtomicBool = AtomicBool::new(false);

/// Counts allocations (and reallocations) made by threads that have armed
/// the counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn count_if_armed() {
    if COUNT_ALL_THREADS.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // `try_with`: TLS may be unavailable during thread teardown; those
    // allocations are by definition outside a measured region.
    let _ = COUNTING.try_with(|armed| {
        if armed.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// SAFETY: delegates directly to `System`; the counter update has no other
// side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_armed();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_armed();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` with this thread's allocation counting armed, returning how
/// many allocations `f` made.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|armed| armed.set(true));
    let result = f();
    COUNTING.with(|armed| armed.set(false));
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// Runs `f` with **all threads'** allocation counting armed, returning how
/// many allocations the whole process made — the measurement mode for the
/// multi-worker frame chain.
fn allocations_during_all_threads<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNT_ALL_THREADS.store(true, Ordering::SeqCst);
    let result = f();
    COUNT_ALL_THREADS.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

use geosphere_core::{
    apply_channel, ethsd_decoder, geosphere_decoder, DetectionBatch, DetectionJob, DetectorStats,
    MimoDetector,
};
use gs_channel::{sample_cn, ChannelModel, RayleighChannel, SelectiveRayleighChannel};
use gs_linalg::{qr_decompose, Complex, Matrix, Qr};
use gs_modulation::{Constellation, GridPoint};
use gs_phy::{decode_frame_batched_into, uplink_frame_soft_into, FrameWorkspace, PhyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instances(
    seed: u64,
    c: Constellation,
    na: usize,
    nc: usize,
    noise: f64,
    n: usize,
) -> Vec<(Matrix, Vec<Complex>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let h = RayleighChannel::new(na, nc).sample_matrix(&mut rng).scale(c.scale());
            let pts = c.points();
            let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, noise);
            }
            (h, y)
        })
        .collect()
}

/// `detect_with_qr` with a warmed workspace must not touch the allocator,
/// across noise levels and both Geosphere and ETH-SD enumerator families.
fn assert_detect_with_qr_allocation_free() {
    let c = Constellation::Qam64;
    let nc = 4;
    let instances = random_instances(9001, c, 4, nc, 0.05, 24);
    let prepared: Vec<(Qr, Vec<Complex>)> = instances
        .iter()
        .map(|(h, y)| {
            let qr = qr_decompose(h);
            let yhat = qr.rotate(y);
            (qr, yhat)
        })
        .collect();

    let geo = geosphere_decoder();
    let hess = ethsd_decoder();
    let mut geo_ws = geo.make_workspace();
    let mut hess_ws = hess.make_workspace();
    let mut stats = DetectorStats::default();

    // Warmup pass: grows every slab/buffer to this workload's high-water
    // mark (searches are deterministic, so a second pass needs no more).
    for (qr, yhat) in &prepared {
        geo.detect_with_qr(&qr.r, &yhat[..nc], c, &mut geo_ws, &mut stats);
        hess.detect_with_qr(&qr.r, &yhat[..nc], c, &mut hess_ws, &mut stats);
    }

    let (delta, ()) = allocations_during(|| {
        for (qr, yhat) in &prepared {
            geo.detect_with_qr(&qr.r, &yhat[..nc], c, &mut geo_ws, &mut stats);
            hess.detect_with_qr(&qr.r, &yhat[..nc], c, &mut hess_ws, &mut stats);
        }
    });
    assert_eq!(
        delta,
        0,
        "detect_with_qr allocated {delta} times across {} warmed detections",
        2 * prepared.len()
    );
    assert!(stats.visited_nodes > 0, "searches must actually have run");
}

/// The batched frame-decode inner loop (`detect_batch_into` with a kept
/// workspace and recycled output) must not touch the allocator — including
/// its per-channel QR refresh and, in the sorted-QR configuration, the
/// permutation handling.
fn assert_detect_batch_into_allocation_free() {
    let c = Constellation::Qam16;
    let mut rng = StdRng::seed_from_u64(9002);
    let n_channels = 3;
    let n_jobs = 30;
    let channels: Vec<Matrix> = (0..n_channels)
        .map(|_| RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale()))
        .collect();
    let pts = c.points();
    let jobs: Vec<DetectionJob> = (0..n_jobs)
        .map(|j| {
            let channel = j % n_channels;
            let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = apply_channel(&channels[channel], &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, 0.05);
            }
            DetectionJob { channel, y }
        })
        .collect();
    let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };

    let plain = geosphere_decoder();
    let sorted = geosphere_decoder().with_sorted_qr();
    let reference_plain = plain.detect_batch(&batch);

    let mut plain_ws = plain.make_workspace();
    let mut sorted_ws = sorted.make_workspace();
    let mut plain_out = Vec::new();
    let mut sorted_out = Vec::new();
    // Two warmup rounds: the first grows the search/prep buffers, the
    // second warms the recycling pool (spare buffers only exist after a
    // previous round's outputs are reclaimed).
    for _ in 0..2 {
        plain.detect_batch_into(&batch, &mut plain_ws, &mut plain_out);
        sorted.detect_batch_into(&batch, &mut sorted_ws, &mut sorted_out);
    }

    let (delta, ()) = allocations_during(|| {
        plain.detect_batch_into(&batch, &mut plain_ws, &mut plain_out);
        sorted.detect_batch_into(&batch, &mut sorted_ws, &mut sorted_out);
    });
    assert_eq!(
        delta,
        0,
        "batched frame-decode inner loop allocated {delta} times across {} warmed jobs",
        2 * n_jobs
    );

    // The allocation-free path must still produce the reference output.
    assert_eq!(plain_out.len(), reference_plain.len());
    for (a, b) in plain_out.iter().zip(&reference_plain) {
        assert_eq!(a.symbols, b.symbols);
        assert_eq!(a.stats, b.stats);
    }
}

/// The whole hard-decision frame chain — payload drawing, transmit
/// encoding, channel application + noise, batched sphere detection (inline
/// or across the persistent worker pool), and the per-client
/// deinterleave/depuncture/Viterbi/CRC receive chain — must not touch the
/// allocator per frame once a [`FrameWorkspace`] has warmed up.
///
/// Counting is process-wide, so the pool's worker threads are measured
/// too, not just the coordinating thread.
fn assert_hard_frame_chain_allocation_free(workers: usize) {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    // A frequency-selective channel so the plan carries one matrix per
    // subcarrier: exercises per-channel QR refresh, the channel-grouped
    // dispatch sort, and multi-entry prep slabs.
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: cfg.n_subcarriers,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(9100));
    let det = geosphere_decoder();
    let mut ws = FrameWorkspace::new();
    let mut rng = StdRng::seed_from_u64(9101);

    // Two warmup frames: the first grows every plan/search/receive buffer,
    // the second warms the detection-output recycling pools (spare buffers
    // only exist after a previous frame's outputs are reclaimed). Buffer
    // high-water marks depend only on the frame shape, not on the noise, so
    // a third frame needs nothing new.
    for _ in 0..2 {
        decode_frame_batched_into(&cfg, &ch, &det, 22.0, &mut rng, workers, &mut ws);
    }

    // With the `profile` feature on, the per-thread counter tables are
    // registered during warmup (first scope entry on each thread), so the
    // measured frame below also pins that the instrumentation itself
    // allocates nothing in steady state.
    #[cfg(feature = "profile")]
    let profile_before = gs_prof::snapshot();
    let (delta, detections) = allocations_during_all_threads(|| {
        decode_frame_batched_into(&cfg, &ch, &det, 22.0, &mut rng, workers, &mut ws).detections
    });
    assert_eq!(
        delta, 0,
        "hard frame chain ({workers} workers) allocated {delta} times for one warmed frame"
    );
    #[cfg(feature = "profile")]
    {
        assert!(gs_prof::enabled());
        let moved = gs_prof::snapshot().delta(&profile_before);
        assert!(
            moved.total_cycles() > 0,
            "profiling is compiled in but the measured frame recorded nothing"
        );
    }
    assert!(detections > 0, "the frame must actually have been detected");
    assert!(
        ws.outcome().client_ok.iter().any(|&ok| ok),
        "22 dB 16-QAM should deliver at least one frame"
    );
}

/// The soft frame chain — soft-output Geosphere per resource element, LLR
/// accumulation, and the soft Viterbi receive chain — under the same
/// zero-allocation contract.
fn assert_soft_frame_chain_allocation_free() {
    let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qpsk) };
    let model = RayleighChannel::new(2, 2);
    let ch = model.realize(&mut StdRng::seed_from_u64(9200));
    let mut ws = FrameWorkspace::new();
    let mut rng = StdRng::seed_from_u64(9201);

    for _ in 0..2 {
        uplink_frame_soft_into(&cfg, &ch, 18.0, &mut rng, &mut ws);
    }

    let (delta, ()) = allocations_during(|| {
        uplink_frame_soft_into(&cfg, &ch, 18.0, &mut rng, &mut ws);
    });
    assert_eq!(delta, 0, "soft frame chain allocated {delta} times for one warmed frame");
    assert!(ws.outcome().stats.visited_nodes > 0, "soft searches must actually have run");
}

/// Telemetry recording — the [`gs_prof::hist::LogHistogram`] surface the
/// streaming runtime records submit→delivery latency, shard queue wait,
/// and deadline slack into on every frame — must not touch the allocator
/// after construction (the bucket array is the type's one allocation).
/// Snapshots may allocate; they are scrape-time calls and stay outside
/// the armed region.
fn assert_histogram_recording_allocation_free() {
    use gs_prof::hist::LogHistogram;
    let hist = LogHistogram::new();
    let (delta, ()) = allocations_during(|| {
        // Values spanning the whole bucket range, including both linear
        // small-value buckets and high octaves.
        for v in 0..10_000u64 {
            hist.record(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        hist.record_duration(std::time::Duration::from_micros(123));
        hist.record_duration(std::time::Duration::from_secs(3600));
    });
    assert_eq!(delta, 0, "histogram recording allocated {delta} times across 10002 records");
    assert_eq!(hist.count(), 10_002);
}

/// Flight-recorder emission — the per-thread event ring behind the
/// runtime's submit/admit/enqueue/pop/deliver instants and the stage
/// spans — must not touch the allocator once the thread's ring is
/// registered (registration is the one warmup allocation). Anomaly dump
/// capture allocates, but that is a rate-limited cold path and stays
/// outside the armed region. The loop wraps the ring several times, so
/// steady-state wraparound is measured, not just the first lap. Without
/// `--features trace` the same calls erase to stubs and trivially pass.
fn assert_trace_recording_allocation_free() {
    use gs_prof::trace as gtrace;
    use gs_prof::Stage;

    // Warmup: registers this thread's ring and touches the context slot.
    gtrace::set_context(gtrace::FrameCtx { frame: 1, client: 0, shard: 0, tier: 2 });
    gtrace::emit(gtrace::TracePoint::Submit);
    drop(gtrace::span(gtrace::TracePoint::Detect));
    gtrace::clear_context();

    let rounds = (gtrace::RING_CAP * 3) as u64;
    let (delta, ()) = allocations_during(|| {
        for k in 0..rounds {
            gtrace::set_context(gtrace::FrameCtx {
                frame: k,
                client: (k % 4) as u32,
                shard: (k % 8) as u16,
                tier: 0,
            });
            gtrace::emit(gtrace::TracePoint::Submit);
            gtrace::emit_for(
                gtrace::TracePoint::Deliver,
                gtrace::EventKind::Instant,
                gtrace::context(),
            );
            drop(gtrace::span(gtrace::TracePoint::Stage(Stage::Plan)));
            gtrace::clear_context();
        }
    });
    assert_eq!(
        delta, 0,
        "flight-recorder emission allocated {delta} times across {rounds} warmed frames"
    );
    #[cfg(feature = "trace")]
    {
        assert!(gtrace::recording_enabled());
        assert!(
            !gtrace::snapshot_events().is_empty(),
            "recording is compiled in but the measured loop recorded nothing"
        );
    }
}

#[test]
fn detection_hot_path_is_allocation_free_after_warmup() {
    assert_detect_with_qr_allocation_free();
    assert_detect_batch_into_allocation_free();
    // Frame chain (tentpole of the FrameWorkspace refactor): hard path at
    // one worker (inline) and four workers (persistent pool), soft path.
    assert_hard_frame_chain_allocation_free(1);
    assert_hard_frame_chain_allocation_free(4);
    assert_soft_frame_chain_allocation_free();
    // Telemetry tier: histogram recording shares the hot path's contract.
    assert_histogram_recording_allocation_free();
    // Flight recorder: event emission shares it too.
    assert_trace_recording_allocation_free();
}
