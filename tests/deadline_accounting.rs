//! Deadline-miss accounting for the streaming runtime.
//!
//! Two suites:
//!
//! * **Property suite** (`deadline_miss_accounting_matches_completions`):
//!   randomized scenarios over adversarial deadline assignments — no
//!   deadline, deadlines *before the stream epoch* (the
//!   `unwrap_or_default` branch of the EDF `deadline_key`, which
//!   saturates to the highest priority), already-expired deadlines, far
//!   futures, and deadlines so distant the nanosecond key saturates at
//!   `NO_DEADLINE - 1` (always at least two, so the saturated keys tie in
//!   the shard heap). For every scenario, the per-completion
//!   [`Completed::missed_deadline`](gs_runtime::Completed::missed_deadline)
//!   flags must agree with ground truth and their sum must equal
//!   [`RuntimeStats::deadline_misses`](gs_runtime::RuntimeStats::deadline_misses).
//!
//! * **Parking regression** (`frame_held_in_parking_ring_past_deadline_is_a_miss`):
//!   a deterministic schedule where a frame *finishes recovery before its
//!   deadline* but sits in the per-client parking ring (waiting for a slow
//!   predecessor) until after it. Misses are accounted at **delivery** —
//!   the point the frame becomes observable — so this frame must count.
//!   Under the old recovery-time accounting it silently did not.

use geosphere_core::{Detection, DetectorLadder, DetectorTier, MimoDetector, ZfDetector};
use gs_channel::{ChannelModel, MimoChannel, RayleighChannel};
use gs_linalg::{Complex, Matrix};
use gs_modulation::Constellation;
use gs_phy::PhyConfig;
use gs_runtime::{AdaptationPolicy, FrameStream, PressureSignal, StreamConfig, UplinkFrame};
use proptest::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a frame's deadline is chosen, and the ground-truth verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeadlineKind {
    /// No deadline: never a miss.
    None,
    /// Before the stream epoch: EDF key saturates to `0`
    /// (`checked_duration_since` fails, `unwrap_or_default`), and the
    /// frame is late the moment it is delivered.
    PreEpoch,
    /// Already expired at submission: always a miss.
    Expired,
    /// An hour out: never a miss.
    FarFuture,
    /// So distant the nanosecond EDF key saturates at `NO_DEADLINE - 1`;
    /// never a miss. At least two per scenario so saturated keys tie.
    Saturating,
}

impl DeadlineKind {
    fn expect_miss(self) -> bool {
        matches!(self, DeadlineKind::PreEpoch | DeadlineKind::Expired)
    }

    /// The concrete deadline, given an instant known to precede the
    /// stream's epoch.
    fn deadline(self, pre_epoch: Instant) -> Option<Instant> {
        match self {
            DeadlineKind::None => None,
            DeadlineKind::PreEpoch => Some(pre_epoch),
            DeadlineKind::Expired => Some(Instant::now()),
            DeadlineKind::FarFuture => Some(Instant::now() + Duration::from_secs(3_600)),
            // ~6.3e11 years of nanoseconds: overflows u64 nanos, so the
            // EDF key clamps to `NO_DEADLINE - 1`.
            DeadlineKind::Saturating => Some(Instant::now() + Duration::from_secs(20_000_000_000)),
        }
    }
}

const KINDS: [DeadlineKind; 5] = [
    DeadlineKind::None,
    DeadlineKind::PreEpoch,
    DeadlineKind::Expired,
    DeadlineKind::FarFuture,
    DeadlineKind::Saturating,
];

#[derive(Debug)]
struct Scenario {
    clients: usize,
    frames_per_client: usize,
    workers: usize,
    shards: usize,
    capacity: usize,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (1usize..4, 2usize..5, 1usize..4, 1usize..3, 0u64..1_000_000).prop_map(
        |(clients, frames_per_client, workers, shards, seed)| Scenario {
            clients,
            frames_per_client,
            workers,
            shards,
            capacity: 2 + (seed % 3) as usize,
            seed,
        },
    )
}

fn check_deadline_accounting(sc: &Scenario) {
    let cfg = PhyConfig { payload_bits: 128, ..PhyConfig::new(Constellation::Qam16) };
    let mut rng = StdRng::seed_from_u64(sc.seed);
    let channel = Arc::new(RayleighChannel::new(4, 2).realize(&mut rng));

    // Captured before the stream exists, hence before its epoch.
    let pre_epoch = Instant::now();

    let mut stream_sc = StreamConfig::new(sc.clients);
    stream_sc.workers = sc.workers;
    stream_sc.shards = sc.shards;
    stream_sc.capacity = sc.capacity;
    let stream = FrameStream::new(cfg, ZfDetector, stream_sc);

    // Deadline kinds: a mandatory prefix guarantees both saturation ties
    // and both miss kinds appear, the rest are random; then shuffled.
    let total = sc.clients * sc.frames_per_client;
    let mut kinds: Vec<DeadlineKind> = vec![DeadlineKind::Saturating, DeadlineKind::Saturating];
    kinds.extend([DeadlineKind::PreEpoch, DeadlineKind::Expired, DeadlineKind::FarFuture]);
    kinds.truncate(total);
    while kinds.len() < total {
        kinds.push(KINDS[rng.gen_range(0..KINDS.len())]);
    }
    for i in (1..kinds.len()).rev() {
        kinds.swap(i, rng.gen_range(0..i + 1));
    }

    // Per-client frame queues in submission order, remembering each
    // frame's kind for the per-completion check.
    let mut per_client_kinds: Vec<Vec<DeadlineKind>> = vec![Vec::new(); sc.clients];
    let mut per_client: Vec<VecDeque<UplinkFrame>> = vec![VecDeque::new(); sc.clients];
    for (i, &kind) in kinds.iter().enumerate() {
        let client = i % sc.clients;
        let mut f = UplinkFrame::new(client, Arc::clone(&channel), 20.0, sc.seed ^ (i as u64));
        f.deadline = kind.deadline(pre_epoch);
        per_client_kinds[client].push(kind);
        per_client[client].push_back(f);
    }
    let expected_misses = kinds.iter().filter(|k| k.expect_miss()).count() as u64;

    // Adversarial interleaving: a submitter thread drains the per-client
    // queues in random order while the main thread receives.
    let mut schedule: Vec<UplinkFrame> = Vec::new();
    while schedule.len() < total {
        let candidates: Vec<usize> =
            (0..sc.clients).filter(|&c| !per_client[c].is_empty()).collect();
        let c = candidates[rng.gen_range(0..candidates.len())];
        schedule.push(per_client[c].pop_front().unwrap());
    }

    let mut seen: Vec<usize> = vec![0; sc.clients];
    let mut observed_misses = 0u64;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for f in &schedule {
                stream.submit(f.clone()).expect("stream died mid-submit");
            }
        });
        for _ in 0..total {
            let done = stream.recv().expect("stream died mid-drain");
            let client = done.client();
            assert_eq!(done.seq() as usize, seen[client], "{sc:?}: client {client} out of order");
            let kind = per_client_kinds[client][seen[client]];
            assert_eq!(
                done.missed_deadline(),
                kind.expect_miss(),
                "{sc:?}: client {client} seq {} kind {kind:?} mis-flagged",
                seen[client],
            );
            observed_misses += u64::from(done.missed_deadline());
            seen[client] += 1;
        }
    });

    let stats = stream.stats();
    assert_eq!(stats.deadline_misses, expected_misses, "{sc:?}: counter diverges from truth");
    assert_eq!(stats.deadline_misses, observed_misses, "{sc:?}: counter diverges from flags");
    assert_eq!(stats.submitted, total as u64, "{sc:?}");
    assert_eq!(stats.completed, total as u64, "{sc:?}");
    assert_eq!(stats.in_flight, 0, "{sc:?}: all slots released");
}

#[test]
fn deadline_miss_accounting_matches_completions() {
    let strat = scenario_strategy();
    let mut rng = StdRng::seed_from_u64(0xDEAD_11E5);
    for case in 0..8 {
        let sc = strat.sample(&mut rng);
        eprintln!("deadline_accounting case {case}: {sc:?}");
        check_deadline_accounting(&sc);
    }
}

// ---------------------------------------------------------------------------
// Parking-ring regression
// ---------------------------------------------------------------------------

/// A detector whose every `detect` blocks until its gate opens, then
/// delegates to zero-forcing — a deterministic way to hold one frame in
/// the detect stage for as long as the test wants.
struct GateDetector {
    gate: Arc<(Mutex<bool>, Condvar)>,
    inner: ZfDetector,
}

impl GateDetector {
    fn new() -> (Self, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (GateDetector { gate: Arc::clone(&gate), inner: ZfDetector }, gate)
    }
}

fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cvar) = &**gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
}

impl MimoDetector for GateDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        drop(open);
        self.inner.detect(h, y, c)
    }

    fn name(&self) -> &'static str {
        "gated-ZF"
    }
}

/// Replays a fixed tier per admission — the test's way of routing each
/// frame to a chosen ladder rung (and thus a chosen gate).
struct ScriptedPolicy {
    script: VecDeque<DetectorTier>,
}

impl AdaptationPolicy for ScriptedPolicy {
    fn select_tier(&mut self, _signal: &PressureSignal<'_>) -> DetectorTier {
        self.script.pop_front().unwrap_or_default()
    }
}

/// The schedule (one worker, one shard, so detection order is the EDF
/// order):
///
/// * `G` (client 1, no deadline, tier `Sphere` → gate `g`) occupies the
///   only worker.
/// * `A0` (client 0 seq 0, no deadline, tier `Fsd` → gate `a`) queues.
/// * `A1` (client 0 seq 1, deadline +50 ms, tier `Mmse` → plain ZF)
///   queues behind it, but its deadline key beats `A0`'s `NO_DEADLINE`.
///
/// Opening `g` frees the worker; EDF picks `A1`, which detects and
/// recovers *well before its deadline* — then parks, because `A0` hasn't
/// delivered. The test sleeps past the deadline before opening `a`, so
/// `A1` is delivered late. Delivery-time accounting must flag it.
#[test]
fn frame_held_in_parking_ring_past_deadline_is_a_miss() {
    let cfg = PhyConfig { payload_bits: 128, ..PhyConfig::new(Constellation::Qam16) };
    let mut rng = StdRng::seed_from_u64(0x9A4C);
    let channel: Arc<MimoChannel> = Arc::new(RayleighChannel::new(4, 2).realize(&mut rng));

    let (gate_g, g) = GateDetector::new();
    let (gate_a, a) = GateDetector::new();
    let ladder = DetectorLadder::new(Arc::new(gate_g), Arc::new(gate_a), Arc::new(ZfDetector));
    let policy = ScriptedPolicy {
        script: VecDeque::from([DetectorTier::Sphere, DetectorTier::Fsd, DetectorTier::Mmse]),
    };

    let mut sc = StreamConfig::new(2);
    sc.workers = 1;
    sc.shards = 1;
    sc.capacity = 3;
    let stream = FrameStream::adaptive(cfg, ladder, policy, sc);

    let frame_g = UplinkFrame::new(1, Arc::clone(&channel), 20.0, 100);
    let frame_a0 = UplinkFrame::new(0, Arc::clone(&channel), 20.0, 200);
    let mut frame_a1 = UplinkFrame::new(0, Arc::clone(&channel), 20.0, 300);
    let deadline = Instant::now() + Duration::from_millis(50);
    frame_a1.deadline = Some(deadline);

    stream.submit(frame_g).expect("submit G");
    stream.submit(frame_a0).expect("submit A0");
    stream.submit(frame_a1).expect("submit A1");

    // Let the planner queue A0 and A1 behind the gated worker, then free
    // it: EDF runs A1 (deadline beats A0's NO_DEADLINE key), which
    // recovers quickly and parks behind the still-gated A0.
    std::thread::sleep(Duration::from_millis(20));
    open_gate(&g);

    let done_g = stream.recv().expect("recv G");
    assert_eq!(done_g.client(), 1);
    assert_eq!(done_g.tier(), DetectorTier::Sphere);
    assert!(!done_g.missed_deadline(), "G has no deadline");
    drop(done_g);

    // Sleep past A1's deadline while it sits parked, then release A0.
    let past = deadline + Duration::from_millis(30);
    let now = Instant::now();
    if past > now {
        std::thread::sleep(past - now);
    }
    open_gate(&a);

    let done_a0 = stream.recv().expect("recv A0");
    assert_eq!((done_a0.client(), done_a0.seq()), (0, 0));
    assert_eq!(done_a0.tier(), DetectorTier::Fsd);
    assert!(!done_a0.missed_deadline(), "A0 has no deadline");
    drop(done_a0);

    let done_a1 = stream.recv().expect("recv A1");
    assert_eq!((done_a1.client(), done_a1.seq()), (0, 1));
    assert_eq!(done_a1.tier(), DetectorTier::Mmse);
    assert!(
        done_a1.missed_deadline(),
        "A1 was delivered after its deadline (held parked) and must be accounted a miss"
    );
    drop(done_a1);

    let stats = stream.stats();
    assert_eq!(stats.deadline_misses, 1, "exactly the parked frame misses");
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.in_flight, 0);
}
