//! Conformance tests for [`FilterCache`]: cached-filter detection must be
//! **exactly** (bit-for-bit) the seed implementations, and the cache must
//! invalidate itself when CSI changes mid-run.
//!
//! The oracles below re-implement the seed detectors' math directly
//! (pseudo-inverse + slice for ZF/MMSE, the per-stage sub-channel loop for
//! MMSE-SIC, the direct column-product covariance assembly for MMSE-PIC)
//! so the comparison is against the original arithmetic, not against the
//! cache-backed production code itself.

use geosphere_core::{
    apply_channel, slice_vector, Detection, DetectionBatch, DetectionJob, DetectorStats,
    FilterCache, MimoDetector, MmseDetector, MmseSicDetector, ZfDetector,
};
use gs_channel::{sample_cn, RayleighChannel};
use gs_linalg::{pseudo_inverse, regularized_pseudo_inverse, Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_symbols(rng: &mut StdRng, c: Constellation, n: usize) -> Vec<GridPoint> {
    let pts = c.points();
    (0..n).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
}

fn random_batch(
    rng: &mut StdRng,
    c: Constellation,
    na: usize,
    nc: usize,
    n_channels: usize,
    n_jobs: usize,
) -> (Vec<Matrix>, Vec<DetectionJob>) {
    let channels: Vec<Matrix> = (0..n_channels)
        .map(|_| RayleighChannel::new(na, nc).sample_matrix(rng).scale(c.scale()))
        .collect();
    let jobs: Vec<DetectionJob> = (0..n_jobs)
        .map(|j| {
            let channel = j % n_channels;
            let s = random_symbols(rng, c, nc);
            let mut y = apply_channel(&channels[channel], &s);
            for v in y.iter_mut() {
                *v += sample_cn(rng, 0.05);
            }
            DetectionJob { channel, y }
        })
        .collect();
    (channels, jobs)
}

/// The seed ZF/MMSE implementation, re-derived: filter construction per
/// call, matched-filter fallback on singular channels.
fn linear_oracle(h: &Matrix, y: &[Complex], c: Constellation, lambda: Option<f64>) -> Detection {
    let mut stats = DetectorStats::default();
    stats.complex_mults += (h.rows() * h.cols()) as u64;
    let filt = match lambda {
        None => pseudo_inverse(h),
        Some(l) => regularized_pseudo_inverse(h, l),
    };
    let w = filt.unwrap_or_else(|_| h.hermitian());
    let symbols = slice_vector(&w.mul_vec(y), c, &mut stats);
    Detection { symbols, stats }
}

/// The seed MMSE-SIC implementation, re-derived: per-stage sub-channel
/// pseudo-inverse, hard-decision cancellation, descending-SNR order.
fn sic_oracle(h: &Matrix, y: &[Complex], c: Constellation, noise_variance: f64) -> Detection {
    let nc = h.cols();
    let mut stats = DetectorStats::default();
    let lambda = noise_variance / c.energy();
    let mut order: Vec<usize> = (0..nc).collect();
    let norms: Vec<f64> = (0..nc).map(|k| h.col(k).iter().map(|z| z.norm_sqr()).sum()).collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).unwrap());

    let mut residual: Vec<Complex> = y.to_vec();
    let mut remaining: Vec<usize> = order.clone();
    let mut symbols = vec![GridPoint::default(); nc];
    while !remaining.is_empty() {
        let sub = Matrix::from_fn(h.rows(), remaining.len(), |r, k| h[(r, remaining[k])]);
        stats.complex_mults += (sub.rows() * sub.cols()) as u64;
        let filt = match regularized_pseudo_inverse(&sub, lambda) {
            Ok(w) => w,
            Err(_) => sub.hermitian(),
        };
        let est = filt.mul_vec(&residual);
        let stream = remaining[0];
        let decided = c.slice(est[0]);
        stats.slices += 1;
        symbols[stream] = decided;
        let contrib = decided.to_complex();
        for (r, res) in residual.iter_mut().enumerate() {
            *res -= h[(r, stream)] * contrib;
        }
        stats.complex_mults += h.rows() as u64;
        remaining.remove(0);
    }
    Detection { symbols, stats }
}

fn assert_matches_oracle(
    name: &str,
    got: &[Detection],
    jobs: &[DetectionJob],
    oracle: impl Fn(usize) -> Detection,
) {
    assert_eq!(got.len(), jobs.len(), "{name}: output length");
    for (k, d) in got.iter().enumerate() {
        let expect = oracle(k);
        assert_eq!(d.symbols, expect.symbols, "{name}: job {k} symbols");
        assert_eq!(d.stats, expect.stats, "{name}: job {k} stats");
    }
}

#[test]
fn cached_linear_detection_matches_seed_oracle() {
    let mut rng = StdRng::seed_from_u64(7001);
    let c = Constellation::Qam16;
    let (channels, jobs) = random_batch(&mut rng, c, 4, 3, 4, 24);
    let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };

    let zf = ZfDetector;
    let mmse = MmseDetector::new(0.05);
    let lambda = 0.05 / c.energy();

    for pass in 0..2 {
        // Per-call `detect` (one-shot cache), whole-batch `detect_batch`
        // (shared cache), and the workspace form across two passes (second
        // pass runs fully on cached filters).
        let mut ws = zf.make_batch_workspace();
        let mut out = Vec::new();
        zf.detect_batch_with(&batch, &mut ws, &mut out);
        assert_matches_oracle("ZF batch_with", &out, &jobs, |k| {
            linear_oracle(&channels[jobs[k].channel], &jobs[k].y, c, None)
        });
        zf.detect_batch_with(&batch, &mut ws, &mut out);
        assert_matches_oracle("ZF batch_with warm", &out, &jobs, |k| {
            linear_oracle(&channels[jobs[k].channel], &jobs[k].y, c, None)
        });

        let out = mmse.detect_batch(&batch);
        assert_matches_oracle("MMSE batch", &out, &jobs, |k| {
            linear_oracle(&channels[jobs[k].channel], &jobs[k].y, c, Some(lambda))
        });

        for (k, job) in jobs.iter().enumerate() {
            let got = zf.detect(&channels[job.channel], &job.y, c);
            let expect = linear_oracle(&channels[job.channel], &job.y, c, None);
            assert_eq!(got.symbols, expect.symbols, "ZF detect job {k} pass {pass}");
            assert_eq!(got.stats, expect.stats, "ZF detect job {k} pass {pass}");
        }
    }
}

#[test]
fn cached_sic_detection_matches_seed_oracle() {
    let mut rng = StdRng::seed_from_u64(7002);
    let c = Constellation::Qam16;
    let (channels, jobs) = random_batch(&mut rng, c, 4, 4, 3, 18);
    let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
    let sic = MmseSicDetector::new(0.05);

    let mut ws = sic.make_batch_workspace();
    let mut out = Vec::new();
    for pass in 0..2 {
        sic.detect_batch_with(&batch, &mut ws, &mut out);
        assert_matches_oracle(&format!("SIC batch_with pass {pass}"), &out, &jobs, |k| {
            sic_oracle(&channels[jobs[k].channel], &jobs[k].y, c, 0.05)
        });
    }
    for (k, job) in jobs.iter().enumerate() {
        let got = sic.detect(&channels[job.channel], &job.y, c);
        let expect = sic_oracle(&channels[job.channel], &job.y, c, 0.05);
        assert_eq!(got.symbols, expect.symbols, "SIC detect job {k}");
        assert_eq!(got.stats, expect.stats, "SIC detect job {k}");
    }
}

#[test]
fn cache_invalidates_on_csi_change_mid_run() {
    // Warm the cache on channel set A, then hand the *same* workspace a
    // batch whose channel contents changed (new realization, same shape)
    // — every output must match the new channels' oracle, proving the
    // snapshot comparison caught the CSI change.
    let mut rng = StdRng::seed_from_u64(7003);
    let c = Constellation::Qpsk;
    let (channels_a, jobs_a) = random_batch(&mut rng, c, 3, 3, 2, 10);
    let (channels_b, jobs_b) = random_batch(&mut rng, c, 3, 3, 2, 10);

    for det in [&ZfDetector as &dyn MimoDetector, &MmseSicDetector::new(0.02)] {
        let mut ws = det.make_batch_workspace();
        let mut out = Vec::new();
        let batch_a = DetectionBatch { channels: &channels_a, jobs: &jobs_a, c };
        det.detect_batch_with(&batch_a, &mut ws, &mut out);

        let batch_b = DetectionBatch { channels: &channels_b, jobs: &jobs_b, c };
        det.detect_batch_with(&batch_b, &mut ws, &mut out);
        let reference = batch_b.detect_serial(det);
        for (k, (got, expect)) in out.iter().zip(&reference).enumerate() {
            assert_eq!(got.symbols, expect.symbols, "{} post-CSI-change job {k}", det.name());
            assert_eq!(got.stats, expect.stats, "{} post-CSI-change job {k}", det.name());
        }
    }
}

#[test]
fn pic_gram_covariance_assembly_matches_direct_computation() {
    // The iterative MMSE-PIC receiver assembles its residual covariance
    // from cached column outer products; verify the cached assembly is
    // bit-identical to the direct per-element products of the seed
    // implementation, for random per-stream variances.
    let mut rng = StdRng::seed_from_u64(7004);
    let na = 4;
    let nc = 3;
    let sigma2 = 0.07;
    for trial in 0..20 {
        let h = RayleighChannel::new(na, nc).sample_matrix(&mut rng);
        let variances: Vec<f64> = (0..nc).map(|_| rng.gen_range(0.0..2.0)).collect();
        let mut cache = FilterCache::new();
        let gram = cache.pic_gram(0, &h);

        for r1 in 0..na {
            for r2 in 0..na {
                // Seed expression: Σ_cl h[(r1,cl)] · h[(r2,cl)]* · v_cl (+ σ²).
                let mut direct = Complex::ZERO;
                let mut cached = Complex::ZERO;
                for cl in 0..nc {
                    direct += h[(r1, cl)] * h[(r2, cl)].conj() * variances[cl];
                    cached += gram.outer[cl][(r1, r2)] * variances[cl];
                }
                if r1 == r2 {
                    direct += Complex::real(sigma2);
                    cached += Complex::real(sigma2);
                }
                assert_eq!(direct, cached, "trial {trial} entry ({r1},{r2})");
            }
        }
    }
}

#[test]
fn pic_gram_rebuilds_on_channel_change() {
    let mut rng = StdRng::seed_from_u64(7005);
    let h1 = RayleighChannel::new(3, 2).sample_matrix(&mut rng);
    let h2 = RayleighChannel::new(3, 2).sample_matrix(&mut rng);
    let mut cache = FilterCache::new();
    cache.pic_gram(0, &h1);
    // Same index, new CSI: the entry must reflect h2, not h1.
    let gram = cache.pic_gram(0, &h2);
    for cl in 0..2 {
        for r1 in 0..3 {
            for r2 in 0..3 {
                assert_eq!(gram.outer[cl][(r1, r2)], h2[(r1, cl)] * h2[(r2, cl)].conj());
            }
        }
    }
}
