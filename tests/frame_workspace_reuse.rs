//! Property test: a reused [`FrameWorkspace`] is bit-identical to a fresh
//! one, across randomized frame-shape sequences.
//!
//! The zero-allocation frame pipeline keeps every buffer alive between
//! frames and only ever grows them, so the dangerous failure mode is
//! *stale state*: a previous frame's larger plan, channel table, job list,
//! detection outputs, or LLR streams leaking into a later (smaller or
//! differently-shaped) frame. This suite drives one long-lived workspace
//! through random sequences of (modulation, client/antenna counts, SNR,
//! payload length, worker count) — shrinking and growing between frames —
//! and demands exact equality (`client_ok`, operation counts, detection
//! counts) with a fresh workspace per frame, for the hard batched, soft,
//! and iterative receive paths.

use geosphere_core::geosphere_decoder;
use gs_channel::{ChannelModel, RayleighChannel};
use gs_modulation::Constellation;
use gs_phy::{
    decode_frame_batched_into, uplink_frame_iterative_into, uplink_frame_soft_into, FrameWorkspace,
    PhyConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn constellation_strategy() -> impl Strategy<Value = Constellation> {
    prop_oneof![Just(Constellation::Qpsk), Just(Constellation::Qam16), Just(Constellation::Qam64)]
}

/// One randomized frame scenario: modulation, MIMO size, SNR, frame
/// length, worker count, and an RNG seed.
type Scenario = (Constellation, (usize, usize), f64, usize, u64);

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        constellation_strategy(),
        // (clients, extra AP antennas): 1..=3 clients, AP has 0..=2 spares.
        (1usize..4, 0usize..3),
        8.0f64..32.0,
        // Payload length varies the OFDM symbol count (frame length).
        128usize..1024,
        0u64..1_000_000,
    )
}

fn cfg_for(c: Constellation, payload_bits: usize, seed: u64) -> PhyConfig {
    // Vary the subcarrier count too (values keeping n_cbps a multiple of
    // 16 for every constellation), so caches keyed on frame geometry are
    // exercised across shape changes — notably the iterative path's
    // interleaver-map cache, which depends on (n_cbps, bits_per_symbol).
    let n_subcarriers = [8, 24, 48][seed as usize % 3];
    PhyConfig { payload_bits, n_subcarriers, ..PhyConfig::new(c) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hard batched path: reused workspace ≡ fresh workspace, at a worker
    /// count that alternates between inline (1) and pooled (3) across the
    /// sequence.
    #[test]
    fn reused_workspace_matches_fresh_hard(
        scenarios in proptest::collection::vec(scenario_strategy(), 3..6)
    ) {
        let det = geosphere_decoder();
        let mut shared = FrameWorkspace::new();
        for (step, &(c, (nc, spare), snr_db, payload_bits, seed)) in scenarios.iter().enumerate() {
            let cfg = cfg_for(c, payload_bits, seed);
            let na = nc + spare;
            let workers = 1 + 2 * (step % 2); // 1, 3, 1, ...
            let ch = RayleighChannel::new(na, nc).realize(&mut StdRng::seed_from_u64(seed));

            let mut fresh_ws = FrameWorkspace::new();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
            let fresh = decode_frame_batched_into(
                &cfg, &ch, &det, snr_db, &mut rng, workers, &mut fresh_ws,
            ).clone();

            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
            let reused = decode_frame_batched_into(
                &cfg, &ch, &det, snr_db, &mut rng, workers, &mut shared,
            );
            prop_assert_eq!(&reused.client_ok, &fresh.client_ok,
                "step {} ({:?} {}x{} @ {:.1} dB, {} workers)", step, c, nc, na, snr_db, workers);
            prop_assert_eq!(reused.stats, fresh.stats, "step {} stats", step);
            prop_assert_eq!(reused.detections, fresh.detections, "step {} detections", step);
        }
    }

    /// Soft path: reused workspace ≡ fresh workspace across shape changes.
    #[test]
    fn reused_workspace_matches_fresh_soft(
        scenarios in proptest::collection::vec(scenario_strategy(), 2..4)
    ) {
        let mut shared = FrameWorkspace::new();
        for (step, &(c, (nc, spare), snr_db, payload_bits, seed)) in scenarios.iter().enumerate() {
            // Soft counter-hypothesis searches grow fast with |O|·nc; cap
            // the shape so the property stays quick under libtest.
            let c = if nc >= 3 { Constellation::Qpsk } else { c };
            let cfg = cfg_for(c, 128 + payload_bits % 256, seed);
            let ch = RayleighChannel::new(nc + spare, nc).realize(&mut StdRng::seed_from_u64(seed));

            let mut fresh_ws = FrameWorkspace::new();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5011D);
            let fresh =
                uplink_frame_soft_into(&cfg, &ch, snr_db, &mut rng, &mut fresh_ws).clone();

            let mut rng = StdRng::seed_from_u64(seed ^ 0x5011D);
            let reused = uplink_frame_soft_into(&cfg, &ch, snr_db, &mut rng, &mut shared);
            prop_assert_eq!(&reused.client_ok, &fresh.client_ok, "step {}", step);
            prop_assert_eq!(reused.stats, fresh.stats, "step {}", step);
            prop_assert_eq!(reused.detections, fresh.detections, "step {}", step);
        }
    }

    /// Iterative (turbo MMSE-PIC) path: reused workspace ≡ fresh workspace,
    /// including the per-subcarrier Gram cache self-invalidating between
    /// channels.
    #[test]
    fn reused_workspace_matches_fresh_iterative(
        scenarios in proptest::collection::vec(scenario_strategy(), 2..4)
    ) {
        let mut shared = FrameWorkspace::new();
        for (step, &(c, (nc, spare), snr_db, payload_bits, seed)) in scenarios.iter().enumerate() {
            let cfg = cfg_for(c, 128 + payload_bits % 256, seed);
            let iterations = 1 + step % 2;
            let ch = RayleighChannel::new(nc + spare, nc).realize(&mut StdRng::seed_from_u64(seed));

            let mut fresh_ws = FrameWorkspace::new();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x17E7);
            let fresh = uplink_frame_iterative_into(
                &cfg, &ch, snr_db, iterations, &mut rng, &mut fresh_ws,
            ).clone();

            let mut rng = StdRng::seed_from_u64(seed ^ 0x17E7);
            let reused =
                uplink_frame_iterative_into(&cfg, &ch, snr_db, iterations, &mut rng, &mut shared);
            prop_assert_eq!(&reused.client_ok, &fresh.client_ok, "step {}", step);
            prop_assert_eq!(reused.stats, fresh.stats, "step {}", step);
            prop_assert_eq!(reused.detections, fresh.detections, "step {}", step);
        }
    }
}
