//! End-to-end test of the operations cockpit: drive real frames through
//! the streaming runtime, scrape the live `/metrics` endpoint over a raw
//! TCP connection, parse the exposition, and require the scraped counters
//! to match a [`RuntimeStats`] snapshot *exactly* — the endpoint is a
//! rendering of the snapshot, not a second bookkeeping system.

use geosphere::channel::RayleighChannel;
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::PhyConfig;
use geosphere::runtime::{FrameStream, StreamConfig};
use geosphere::sim::{run_poisson_uplink, PoissonParams};
use geosphere::telemetry::{
    assert_counters_monotone, lint_exposition, render_runtime_stats, render_runtime_stats_capped,
    scrape, scrape_deadline, MetricsServer, QUANTILES,
};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 3;
const FRAMES_PER_CLIENT: usize = 20;

#[test]
fn scraped_metrics_match_runtime_stats_exactly() {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let stream = Arc::new(FrameStream::new(cfg, geosphere_decoder(), StreamConfig::new(CLIENTS)));
    let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&stream)).expect("bind");
    let model = RayleighChannel::new(4, 2);
    let params = PoissonParams {
        clients: CLIENTS,
        frames_per_client: FRAMES_PER_CLIENT,
        rate_hz: f64::INFINITY,
        snr_db: 24.0,
        deadline: Some(Duration::from_millis(250)),
        seed: 814,
    };

    let report = run_poisson_uplink(&stream, &model, &params);
    assert!(report.submitted > 0, "traffic must actually have flowed");

    // The driver has drained every completion, so the stream is idle and
    // the scrape must agree with a snapshot taken around it bit for bit.
    let body = scrape(server.addr(), "/metrics").expect("scrape");
    let expo = lint_exposition(&body).expect("exposition lints clean");
    let stats = stream.stats();

    for (name, expect) in [
        ("gs_frames_submitted_total", stats.submitted),
        ("gs_frames_planned_total", stats.planned),
        ("gs_frames_detected_total", stats.detected),
        ("gs_frames_recovered_total", stats.recovered),
        ("gs_frames_completed_total", stats.completed),
        ("gs_deadline_misses_total", stats.deadline_misses),
    ] {
        assert_eq!(expo.value(name, &[]), Some(expect as f64), "{name}");
    }
    assert_eq!(stats.submitted, (CLIENTS * FRAMES_PER_CLIENT) as u64 - report.dropped);

    let tiers: f64 =
        expo.series("gs_tier_admissions_total").iter().map(|sample| sample.value).sum();
    assert_eq!(tiers, stats.tier_admissions.iter().sum::<u64>() as f64);

    for (name, expect) in [
        ("gs_in_flight", stats.in_flight as f64),
        ("gs_capacity", stats.capacity as f64),
        ("gs_occupancy", stats.occupancy()),
        ("gs_shards", stats.shards as f64),
        ("gs_workers", stats.workers as f64),
        ("gs_current_tier", stats.current_tier.index() as f64),
    ] {
        assert_eq!(expo.value(name, &[]), Some(expect), "{name}");
    }
    assert_eq!(expo.value("gs_in_flight", &[]), Some(0.0), "stream must be idle after drain");
    assert_eq!(expo.series("gs_shard_queue_depth").len(), stats.shards);

    // Histogram-backed summaries: one series set per client/shard, counts
    // consistent with the pipeline counters, quantiles ordered.
    for client in 0..CLIENTS {
        let label = client.to_string();
        let count = expo
            .value("gs_submit_delivery_latency_seconds_count", &[("client", &label)])
            .expect("latency count series");
        assert_eq!(count, stats.latency_per_client[client].count() as f64);
        let qs: Vec<f64> = QUANTILES
            .iter()
            .map(|q| {
                expo.value(
                    "gs_submit_delivery_latency_seconds",
                    &[("client", &label), ("quantile", &q.to_string())],
                )
                .expect("latency quantile series")
            })
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles must be ordered: {qs:?}");
        let max = expo
            .value("gs_submit_delivery_latency_seconds_max", &[("client", &label)])
            .expect("latency max series");
        assert!(qs.iter().all(|&q| q <= max + 1e-12));
    }
    let latency_total: u64 = stats.latency_per_client.iter().map(|h| h.count()).sum();
    assert_eq!(latency_total, stats.completed, "every delivery records one latency sample");
    assert_eq!(
        stats.deadline_slack.count() + stats.deadline_lateness.count(),
        stats.completed,
        "every delivery lands in exactly one of slack/lateness"
    );
    let queue_wait_total: u64 = stats.queue_wait_per_shard.iter().map(|h| h.count()).sum();
    assert!(queue_wait_total >= stats.detected, "each frame's shard jobs waited in some queue");

    // The endpoint serves exactly what the renderer produces.
    let rendered = lint_exposition(&render_runtime_stats(&stats)).expect("renderer lints clean");
    assert_eq!(rendered.types, expo.types, "served families match direct rendering");

    // A second burst: counters move forward, never backward, and the new
    // scrape still lints.
    run_poisson_uplink(&stream, &model, &params);
    let second = lint_exposition(&scrape(server.addr(), "/metrics").expect("scrape #2"))
        .expect("second exposition lints clean");
    let compared = assert_counters_monotone(&expo, &second).expect("counters monotone");
    assert!(compared >= 9, "all counter series present in both scrapes");
    assert!(
        second.value("gs_frames_completed_total", &[])
            > expo.value("gs_frames_completed_total", &[]),
        "second burst completed more frames"
    );

    // Unknown paths 404 (scrape surfaces that as an error), wrong methods
    // are rejected, and shutdown is clean + idempotent.
    assert!(scrape(server.addr(), "/nope").is_err());
    let mut server = server;
    server.shutdown();
    server.shutdown();
    assert!(scrape(server.addr(), "/metrics").is_err(), "endpoint is down after shutdown");
}

/// Capping per-client latency lanes keeps the first N clients as their own
/// series and folds the tail into a single `client="other"` lane without
/// losing any samples.
#[test]
fn client_lanes_past_the_cap_fold_into_other() {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let stream = Arc::new(FrameStream::new(cfg, geosphere_decoder(), StreamConfig::new(CLIENTS)));
    let model = RayleighChannel::new(4, 2);
    let params = PoissonParams {
        clients: CLIENTS,
        frames_per_client: FRAMES_PER_CLIENT,
        rate_hz: f64::INFINITY,
        snr_db: 24.0,
        deadline: None,
        seed: 915,
    };
    run_poisson_uplink(&stream, &model, &params);
    let stats = stream.stats();
    const _: () = assert!(CLIENTS >= 3, "test needs a tail to fold past a cap of 2");

    fn count_in(expo: &geosphere::telemetry::Exposition, label: &str) -> Option<f64> {
        expo.value("gs_submit_delivery_latency_seconds_count", &[("client", label)])
    }
    let capped = lint_exposition(&render_runtime_stats_capped(&stats, 2)).expect("capped lints");
    assert_eq!(count_in(&capped, "0"), Some(stats.latency_per_client[0].count() as f64));
    assert_eq!(count_in(&capped, "1"), Some(stats.latency_per_client[1].count() as f64));
    assert_eq!(count_in(&capped, "2"), None, "client 2 must have folded into the overflow lane");
    let tail: u64 = stats.latency_per_client[2..].iter().map(|h| h.count()).sum();
    assert_eq!(count_in(&capped, "other"), Some(tail as f64), "overflow lane keeps every sample");

    // A cap at or above the client count changes nothing: every client
    // keeps its own lane and no overflow lane appears.
    let uncapped = lint_exposition(&render_runtime_stats_capped(&stats, CLIENTS)).expect("lints");
    assert_eq!(
        uncapped.value("gs_submit_delivery_latency_seconds_count", &[("client", "other")]),
        None
    );
    assert_eq!(count_in(&uncapped, "2"), Some(stats.latency_per_client[2].count() as f64));
    let default = lint_exposition(&render_runtime_stats(&stats)).expect("default render lints");
    assert_eq!(
        default.value("gs_submit_delivery_latency_seconds_count", &[("client", "other")]),
        None,
        "default cap must not fold a {CLIENTS}-client stream"
    );
}

/// A scrape against a peer that accepts the connection but never responds
/// must give up at the caller's deadline instead of hanging.
#[test]
fn scrape_gives_up_at_its_deadline_against_a_stalled_peer() {
    // A bound-but-never-accepted listener: the kernel completes the TCP
    // handshake, the request lands in a buffer, and no byte ever comes
    // back — exactly the stall the deadline exists for.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let start = std::time::Instant::now();
    let err = scrape_deadline(addr, "/metrics", Duration::from_millis(250))
        .expect_err("stalled peer must not yield a body");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "unexpected error: {err}");
    assert!(start.elapsed() < Duration::from_secs(3), "deadline must bound the wait");
    drop(listener);
}
