//! End-to-end test of the operations cockpit: drive real frames through
//! the streaming runtime, scrape the live `/metrics` endpoint over a raw
//! TCP connection, parse the exposition, and require the scraped counters
//! to match a [`RuntimeStats`] snapshot *exactly* — the endpoint is a
//! rendering of the snapshot, not a second bookkeeping system.

use geosphere::channel::RayleighChannel;
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::PhyConfig;
use geosphere::runtime::{FrameStream, StreamConfig};
use geosphere::sim::{run_poisson_uplink, PoissonParams};
use geosphere::telemetry::{
    assert_counters_monotone, lint_exposition, render_runtime_stats, scrape, MetricsServer,
    QUANTILES,
};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 3;
const FRAMES_PER_CLIENT: usize = 20;

#[test]
fn scraped_metrics_match_runtime_stats_exactly() {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let stream = Arc::new(FrameStream::new(cfg, geosphere_decoder(), StreamConfig::new(CLIENTS)));
    let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&stream)).expect("bind");
    let model = RayleighChannel::new(4, 2);
    let params = PoissonParams {
        clients: CLIENTS,
        frames_per_client: FRAMES_PER_CLIENT,
        rate_hz: f64::INFINITY,
        snr_db: 24.0,
        deadline: Some(Duration::from_millis(250)),
        seed: 814,
    };

    let report = run_poisson_uplink(&stream, &model, &params);
    assert!(report.submitted > 0, "traffic must actually have flowed");

    // The driver has drained every completion, so the stream is idle and
    // the scrape must agree with a snapshot taken around it bit for bit.
    let body = scrape(server.addr(), "/metrics").expect("scrape");
    let expo = lint_exposition(&body).expect("exposition lints clean");
    let stats = stream.stats();

    for (name, expect) in [
        ("gs_frames_submitted_total", stats.submitted),
        ("gs_frames_planned_total", stats.planned),
        ("gs_frames_detected_total", stats.detected),
        ("gs_frames_recovered_total", stats.recovered),
        ("gs_frames_completed_total", stats.completed),
        ("gs_deadline_misses_total", stats.deadline_misses),
    ] {
        assert_eq!(expo.value(name, &[]), Some(expect as f64), "{name}");
    }
    assert_eq!(stats.submitted, (CLIENTS * FRAMES_PER_CLIENT) as u64 - report.dropped);

    let tiers: f64 =
        expo.series("gs_tier_admissions_total").iter().map(|sample| sample.value).sum();
    assert_eq!(tiers, stats.tier_admissions.iter().sum::<u64>() as f64);

    for (name, expect) in [
        ("gs_in_flight", stats.in_flight as f64),
        ("gs_capacity", stats.capacity as f64),
        ("gs_occupancy", stats.occupancy()),
        ("gs_shards", stats.shards as f64),
        ("gs_workers", stats.workers as f64),
        ("gs_current_tier", stats.current_tier.index() as f64),
    ] {
        assert_eq!(expo.value(name, &[]), Some(expect), "{name}");
    }
    assert_eq!(expo.value("gs_in_flight", &[]), Some(0.0), "stream must be idle after drain");
    assert_eq!(expo.series("gs_shard_queue_depth").len(), stats.shards);

    // Histogram-backed summaries: one series set per client/shard, counts
    // consistent with the pipeline counters, quantiles ordered.
    for client in 0..CLIENTS {
        let label = client.to_string();
        let count = expo
            .value("gs_submit_delivery_latency_seconds_count", &[("client", &label)])
            .expect("latency count series");
        assert_eq!(count, stats.latency_per_client[client].count() as f64);
        let qs: Vec<f64> = QUANTILES
            .iter()
            .map(|q| {
                expo.value(
                    "gs_submit_delivery_latency_seconds",
                    &[("client", &label), ("quantile", &q.to_string())],
                )
                .expect("latency quantile series")
            })
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles must be ordered: {qs:?}");
        let max = expo
            .value("gs_submit_delivery_latency_seconds_max", &[("client", &label)])
            .expect("latency max series");
        assert!(qs.iter().all(|&q| q <= max + 1e-12));
    }
    let latency_total: u64 = stats.latency_per_client.iter().map(|h| h.count()).sum();
    assert_eq!(latency_total, stats.completed, "every delivery records one latency sample");
    assert_eq!(
        stats.deadline_slack.count() + stats.deadline_lateness.count(),
        stats.completed,
        "every delivery lands in exactly one of slack/lateness"
    );
    let queue_wait_total: u64 = stats.queue_wait_per_shard.iter().map(|h| h.count()).sum();
    assert!(queue_wait_total >= stats.detected, "each frame's shard jobs waited in some queue");

    // The endpoint serves exactly what the renderer produces.
    let rendered = lint_exposition(&render_runtime_stats(&stats)).expect("renderer lints clean");
    assert_eq!(rendered.types, expo.types, "served families match direct rendering");

    // A second burst: counters move forward, never backward, and the new
    // scrape still lints.
    run_poisson_uplink(&stream, &model, &params);
    let second = lint_exposition(&scrape(server.addr(), "/metrics").expect("scrape #2"))
        .expect("second exposition lints clean");
    let compared = assert_counters_monotone(&expo, &second).expect("counters monotone");
    assert!(compared >= 9, "all counter series present in both scrapes");
    assert!(
        second.value("gs_frames_completed_total", &[])
            > expo.value("gs_frames_completed_total", &[]),
        "second burst completed more frames"
    );

    // Unknown paths 404 (scrape surfaces that as an error), wrong methods
    // are rejected, and shutdown is clean + idempotent.
    assert!(scrape(server.addr(), "/nope").is_err());
    let mut server = server;
    server.shutdown();
    server.shutdown();
    assert!(scrape(server.addr(), "/metrics").is_err(), "endpoint is down after shutdown");
}
