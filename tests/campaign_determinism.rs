//! Campaign reproducibility: the same base seed must produce a
//! byte-identical `CAMPAIGN_*.json` report — including injected-fault
//! timing and miss counts — no matter how many runner threads execute
//! the scenarios. This is the property the CI campaign gate leans on:
//! a failing scenario's seed, re-run locally on any machine with any
//! parallelism, reproduces the exact report that failed.

use geosphere::sim::{run_scenario_by_index, CampaignConfig, CampaignReport};
use proptest::prelude::*;

/// A CI-sized campaign: small enough that proptest can afford several
/// full runs per case, large enough that the sampler exercises faulted
/// and fault-free scenarios (every 16th index is the storm preset, and
/// the fault axis fires on roughly half the rest).
fn tiny_campaign(base_seed: u64, scenarios: usize, threads: usize) -> CampaignReport {
    let config = CampaignConfig {
        base_seed,
        scenarios,
        frames_per_client: 4,
        runner_threads: threads,
        speedup: 1,
    };
    geosphere::sim::run_campaign(&config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Serial and 4-way-parallel runs of the same seeded campaign render
    /// byte-identical reports, and neither run violates an invariant.
    #[test]
    fn report_is_a_pure_function_of_the_seed(base_seed in 0u64..1_000_000) {
        let serial = tiny_campaign(base_seed, 17, 1);
        let parallel = tiny_campaign(base_seed, 17, 4);
        prop_assert_eq!(serial.total_violations(), 0,
            "serial run violated invariants: {:?}",
            serial.outcomes.iter().flat_map(|o| o.violations.clone()).collect::<Vec<_>>());
        prop_assert_eq!(parallel.total_violations(), 0,
            "parallel run violated invariants: {:?}",
            parallel.outcomes.iter().flat_map(|o| o.violations.clone()).collect::<Vec<_>>());
        prop_assert_eq!(serial.checksum(), parallel.checksum());
        prop_assert_eq!(serial.render_json(), parallel.render_json());
    }

    /// Any single scenario re-run by `(index, base_seed)` — the repro
    /// recipe the campaign gate prints on failure — reproduces its
    /// outcome from the full campaign exactly, fault firing included.
    #[test]
    fn scenario_repro_by_index_matches_the_campaign(
        base_seed in 0u64..1_000_000,
        index in 0usize..17,
    ) {
        let campaign = tiny_campaign(base_seed, 17, 4);
        let solo = run_scenario_by_index(index, base_seed, 4);
        let from_campaign = &campaign.outcomes[index];
        prop_assert_eq!(solo.seed, from_campaign.seed);
        prop_assert_eq!(&solo.descriptor, &from_campaign.descriptor);
        prop_assert_eq!(solo.delivered, from_campaign.delivered);
        prop_assert_eq!(solo.refused, from_campaign.refused);
        prop_assert_eq!(solo.misses, from_campaign.misses);
        prop_assert_eq!(solo.fault_fired, from_campaign.fault_fired);
        prop_assert_eq!(solo.checksum, from_campaign.checksum);
        prop_assert_eq!(&solo.violations, &from_campaign.violations);
    }
}

/// The seeded sampler must hit every fault family within a CI-sized
/// campaign, and lethal faults must always fire where they were armed —
/// the report records them as outcomes, never as aborts.
#[test]
fn faults_fire_and_are_recorded_as_outcomes() {
    let report = tiny_campaign(2014, 64, 0);
    assert_eq!(report.total_violations(), 0, "CI-shaped campaign must be violation-free");
    let lethal: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.fault.starts_with("worker_panic") || o.fault.starts_with("shard_loss"))
        .collect();
    assert!(!lethal.is_empty(), "64 sampled scenarios must include lethal faults");
    for o in &lethal {
        assert!(o.fault_fired, "scenario {} armed {} but it never fired", o.index, o.fault);
        assert!(
            o.delivered < o.offered,
            "scenario {}: a lethal fault must cost at least the dying frame",
            o.index
        );
    }
}
