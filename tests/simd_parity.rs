//! Scalar-vs-SIMD bit-identity of the `gs_linalg::simd` kernels.
//!
//! The SIMD layer's contract is that every backend produces **bit
//! identical** results (fixed lane-then-tree reduction order, identical
//! per-element product expressions, no FMA contraction) — which is what
//! keeps the oracle/determinism suites meaningful as cross-path ground
//! truth. These tests prove the contract two ways:
//!
//! * kernel-level: proptest over random shapes/values comparing the scalar
//!   tier against the best tier this CPU offers (on machines without
//!   AVX2/NEON both sides resolve to scalar and the tests trivially hold —
//!   the CI scalar/SIMD matrix supplies the vectorized leg);
//! * frame-level: a full `decode_frame_batched_into` uplink frame decoded
//!   with the tier forced to scalar and then to the native tier, at 1 and
//!   4 workers, must agree exactly — CRC verdicts, operation counts, and
//!   per-detection symbol streams.

use gs_linalg::simd::{
    self, caxpy_conj_with, cdot_soa_multi_with, cdot_soa_with, cdot_with, cdotc_with, ped_soa_with,
    Tier,
};
use gs_linalg::{Complex, Matrix};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that read or mutate the process-global dispatch
/// override (`force_tier`); the `_with` kernel tests are tier-independent
/// and run freely.
static TIER_LOCK: Mutex<()> = Mutex::new(());

fn tier_guard() -> std::sync::MutexGuard<'static, ()> {
    TIER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The non-scalar tier this host can run, if any.
fn native_tier() -> Option<Tier> {
    [Tier::Avx2, Tier::Neon].into_iter().find(|&t| simd::tier_supported(t))
}

fn cvec(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
        0..max_len,
    )
}

fn fvec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 0..max_len)
}

fn assert_bits_eq(a: Complex, b: Complex, what: &str) {
    assert_eq!(a.re.to_bits(), b.re.to_bits(), "{what}: re");
    assert_eq!(a.im.to_bits(), b.im.to_bits(), "{what}: im");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdot_bit_identical(a in cvec(33), b in cvec(33)) {
        let Some(native) = native_tier() else { return };
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        assert_bits_eq(cdot_with(Tier::Scalar, a, b), cdot_with(native, a, b), "cdot");
        assert_bits_eq(cdotc_with(Tier::Scalar, a, b), cdotc_with(native, a, b), "cdotc");
    }

    #[test]
    fn cdot_soa_bit_identical(ar in fvec(41), ai in fvec(41), br in fvec(41), bi in fvec(41)) {
        let Some(native) = native_tier() else { return };
        let n = ar.len().min(ai.len()).min(br.len()).min(bi.len());
        assert_bits_eq(
            cdot_soa_with(Tier::Scalar, &ar[..n], &ai[..n], &br[..n], &bi[..n]),
            cdot_soa_with(native, &ar[..n], &ai[..n], &br[..n], &bi[..n]),
            "cdot_soa",
        );
    }

    #[test]
    fn cdot_soa_multi_bit_identical(
        ar in fvec(17), ai in fvec(17),
        slab in fvec(17 * 19 * 2),
        k in 1usize..19,
    ) {
        // Two contracts at once: every tier agrees bitwise, and output `s`
        // equals a per-symbol `cdot_soa` on a contiguous copy of symbol
        // `s`'s column — which is what lets the sphere engine's lockstep
        // descent swap one for the other without perturbing a single bit.
        let m = ar.len().min(ai.len()).min(slab.len() / (2 * k.max(1)));
        let (ar, ai) = (&ar[..m], &ai[..m]);
        let (br, bi) = (&slab[..m * k], &slab[m * k..2 * m * k]);
        let mut out_re_s = vec![0.0; k];
        let mut out_im_s = vec![0.0; k];
        cdot_soa_multi_with(Tier::Scalar, ar, ai, br, bi, k, &mut out_re_s, &mut out_im_s);
        if let Some(native) = native_tier() {
            let mut out_re_v = vec![0.0; k];
            let mut out_im_v = vec![0.0; k];
            cdot_soa_multi_with(native, ar, ai, br, bi, k, &mut out_re_v, &mut out_im_v);
            for s in 0..k {
                assert_eq!(out_re_s[s].to_bits(), out_re_v[s].to_bits(), "multi re sym {s}");
                assert_eq!(out_im_s[s].to_bits(), out_im_v[s].to_bits(), "multi im sym {s}");
            }
        }
        for s in 0..k {
            let col_r: Vec<f64> = (0..m).map(|j| br[j * k + s]).collect();
            let col_i: Vec<f64> = (0..m).map(|j| bi[j * k + s]).collect();
            let single = cdot_soa_with(Tier::Scalar, ar, ai, &col_r, &col_i);
            assert_eq!(out_re_s[s].to_bits(), single.re.to_bits(), "vs cdot_soa re sym {s}");
            assert_eq!(out_im_s[s].to_bits(), single.im.to_bits(), "vs cdot_soa im sym {s}");
        }
    }

    #[test]
    fn caxpy_bit_identical(a in cvec(29), base in cvec(29), y in (-9.0f64..9.0, -9.0f64..9.0)) {
        let Some(native) = native_tier() else { return };
        let n = a.len().min(base.len());
        let y = Complex::new(y.0, y.1);
        let mut out_s = base[..n].to_vec();
        let mut out_v = base[..n].to_vec();
        caxpy_conj_with(Tier::Scalar, &a[..n], y, &mut out_s);
        caxpy_conj_with(native, &a[..n], y, &mut out_v);
        for (s, v) in out_s.iter().zip(&out_v) {
            assert_bits_eq(*s, *v, "caxpy_conj");
        }
    }

    #[test]
    fn ped_bit_identical(
        re in fvec(29),
        im in fvec(29),
        center in (-9.0f64..9.0, -9.0f64..9.0),
        gain in 0.0f64..10.0,
    ) {
        let Some(native) = native_tier() else { return };
        let n = re.len().min(im.len());
        let center = Complex::new(center.0, center.1);
        let mut ped_s = vec![0.0; n];
        let mut ped_v = vec![0.0; n];
        ped_soa_with(Tier::Scalar, &re[..n], &im[..n], center, gain, &mut ped_s);
        ped_soa_with(native, &re[..n], &im[..n], center, gain, &mut ped_v);
        for (s, v) in ped_s.iter().zip(&ped_v) {
            assert_eq!(s.to_bits(), v.to_bits(), "ped_soa");
        }
    }

    #[test]
    fn mul_vec_and_into_share_one_kernel(data in proptest::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
        8..64,
    )) {
        // mul_vec and mul_vec_into promise bit-identity through the shared
        // cdot kernel, whatever tier is active. Holding the tier lock keeps
        // a concurrent tier-forcing test from switching between the calls.
        let cols = data.len() % 4 + 1; // 1..=4, so rows ≥ 1 for len ≥ 8
        let x = data[..cols].to_vec();
        let rest = &data[cols..];
        let rows = rest.len() / cols;
        let m = Matrix::from_rows(rows, cols, &rest[..rows * cols]);
        let _g = tier_guard();
        let a = m.mul_vec(&x);
        let mut b = Vec::new();
        m.mul_vec_into(&x, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert_bits_eq(*p, *q, "mul_vec vs mul_vec_into");
        }
    }
}

/// Frame-level cross-tier parity: the full batched uplink decode must be
/// bit-identical with the tier forced to scalar (`GS_SIMD=off`'s effect)
/// and to the native tier, at 1 and 4 workers — CRC verdicts and operation
/// counts both. Runs the whole toggle under the tier lock so the global
/// dispatch override cannot race other tests in this binary.
#[test]
fn frame_decode_bit_identical_across_tiers_and_workers() {
    use geosphere_core::geosphere_decoder;
    use gs_channel::{ChannelModel, SelectiveRayleighChannel};
    use gs_modulation::Constellation;
    use gs_phy::{decode_frame_batched_into, FrameWorkspace, PhyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let Some(native) = native_tier() else {
        eprintln!("no SIMD tier on this host; scalar-vs-scalar parity is vacuous here");
        return;
    };
    let _g = tier_guard();

    let cfg = PhyConfig { payload_bits: 1024, ..PhyConfig::new(Constellation::Qam16) };
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: cfg.n_subcarriers,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(2014));
    let det = geosphere_decoder();

    let mut outcomes = Vec::new();
    for tier in [Tier::Scalar, native] {
        assert!(simd::force_tier(tier), "{tier:?} must be available");
        // Fresh workspace per tier: its pool workers must run the tier
        // under test from their first frame.
        let mut ws = FrameWorkspace::new();
        for workers in [1usize, 4] {
            let mut rng = StdRng::seed_from_u64(77);
            let out = decode_frame_batched_into(&cfg, &ch, &det, 24.0, &mut rng, workers, &mut ws);
            outcomes.push((tier, workers, out.client_ok.clone(), out.stats, out.detections));
        }
    }
    simd::reset_tier();

    let half = outcomes.len() / 2;
    for k in 0..half {
        let (ta, wa, ok_a, stats_a, det_a) = &outcomes[k];
        let (tb, wb, ok_b, stats_b, det_b) = &outcomes[k + half];
        assert_eq!(wa, wb);
        assert_eq!(ok_a, ok_b, "{ta:?} vs {tb:?} at {wa} workers: CRC verdicts differ");
        assert_eq!(stats_a, stats_b, "{ta:?} vs {tb:?} at {wa} workers: op counts differ");
        assert_eq!(det_a, det_b, "{ta:?} vs {tb:?} at {wa} workers: detection counts differ");
    }
}

/// Symbol-stream parity: per-detection outputs (not just frame verdicts)
/// must match across tiers, for sphere and filter-based detectors alike.
#[test]
fn detect_symbols_bit_identical_across_tiers() {
    use geosphere_core::{
        ethsd_decoder, geosphere_decoder, MimoDetector, MmseSicDetector, ZfDetector,
    };
    use gs_channel::{sample_cn, RayleighChannel};
    use gs_modulation::Constellation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let Some(native) = native_tier() else { return };
    let _g = tier_guard();

    let c = Constellation::Qam64;
    let mut rng = StdRng::seed_from_u64(4711);
    let detectors: Vec<Box<dyn MimoDetector>> = vec![
        Box::new(geosphere_decoder()),
        Box::new(geosphere_decoder().with_sorted_qr()),
        Box::new(ethsd_decoder()),
        Box::new(ZfDetector),
        Box::new(MmseSicDetector::new(0.05)),
    ];
    for trial in 0..10 {
        let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
        let pts = c.points();
        let s: Vec<_> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = geosphere_core::apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(&mut rng, 0.05);
        }
        for det in &detectors {
            assert!(simd::force_tier(Tier::Scalar));
            let scalar = det.detect(&h, &y, c);
            assert!(simd::force_tier(native));
            let vector = det.detect(&h, &y, c);
            assert_eq!(
                scalar.symbols,
                vector.symbols,
                "{} trial {trial}: symbols diverge across tiers",
                det.name()
            );
            assert_eq!(scalar.stats, vector.stats, "{} trial {trial}", det.name());
        }
    }
    simd::reset_tier();
}
