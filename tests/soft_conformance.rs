//! Conformance of [`SoftGeosphereDetector`] against a brute-force max-log
//! oracle.
//!
//! For every bit, the max-log LLR is `(λ_counter − λ_ML)/σ²` signed by the
//! ML bit, where `λ_counter` is the minimum distance over symbol vectors
//! with that bit flipped. On 2-stream instances the oracle is an exhaustive
//! scan over all |O|² hypotheses, so the detector's constrained sphere
//! searches are checked exactly — signs, magnitudes, and clip behavior.

use geosphere_core::{apply_channel, residual_norm_sqr, SoftDetection, SoftGeosphereDetector};
use gs_channel::{sample_cn, RayleighChannel};
use gs_linalg::{Complex, Matrix};
use gs_modulation::{BitTable, Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn problem(
    rng: &mut StdRng,
    c: Constellation,
    noise: f64,
) -> (Matrix, Vec<Complex>, Vec<GridPoint>) {
    let h = RayleighChannel::new(3, 2).sample_matrix(rng).scale(c.scale());
    let pts = c.points();
    let s: Vec<GridPoint> = (0..2).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
    let mut y = apply_channel(&h, &s);
    for v in y.iter_mut() {
        *v += sample_cn(rng, noise);
    }
    (h, y, s)
}

/// Exhaustive per-bit max-log LLRs with the detector's sign convention
/// (positive = bit 0) and clipping.
fn oracle_llrs(h: &Matrix, y: &[Complex], c: Constellation, sigma2: f64, clip: f64) -> Vec<f64> {
    let pts = c.points();
    let q = c.bits_per_symbol();
    let table = BitTable::new(c);
    let mut llrs = Vec::with_capacity(2 * q);
    for stream in 0..2 {
        for k in 0..q {
            let mut d0 = f64::INFINITY;
            let mut d1 = f64::INFINITY;
            for &a in &pts {
                for &b in &pts {
                    let s = [a, b];
                    let d = residual_norm_sqr(h, y, &s);
                    if table.bit(s[stream], k) {
                        d1 = d1.min(d);
                    } else {
                        d0 = d0.min(d);
                    }
                }
            }
            // Max-log LLR, then clip symmetric in magnitude.
            let raw = (d1 - d0) / sigma2;
            llrs.push(raw.clamp(-clip, clip));
        }
    }
    llrs
}

#[test]
fn llrs_match_bruteforce_oracle_qpsk_and_qam16() {
    let mut rng = StdRng::seed_from_u64(7101);
    for &(c, trials) in &[(Constellation::Qpsk, 20), (Constellation::Qam16, 12)] {
        let sigma2 = 0.4;
        // Large clip: no clipping in play, magnitudes must match exactly.
        let det = SoftGeosphereDetector { noise_variance: sigma2, llr_clip: 1e6 };
        for trial in 0..trials {
            let (h, y, _) = problem(&mut rng, c, sigma2);
            let soft = det.detect_soft(&h, &y, c);
            let expect = oracle_llrs(&h, &y, c, sigma2, det.llr_clip);
            assert_eq!(soft.llrs.len(), expect.len());
            for (bit, (&got, &want)) in soft.llrs.iter().zip(&expect).enumerate() {
                assert!(
                    (got - want).abs() < 1e-6,
                    "{c:?} trial {trial} bit {bit}: got {got}, oracle {want}"
                );
                assert_eq!(
                    got < 0.0,
                    want < 0.0,
                    "{c:?} trial {trial} bit {bit}: sign disagrees with oracle"
                );
            }
        }
    }
}

#[test]
fn clipping_matches_oracle_clamp() {
    // With a small clip the counter-hypothesis search is radius-limited;
    // every surviving magnitude must equal the clamped oracle value, and
    // none may exceed the clip.
    let mut rng = StdRng::seed_from_u64(7102);
    for &c in &[Constellation::Qpsk, Constellation::Qam16] {
        let sigma2 = 0.15;
        let det = SoftGeosphereDetector { noise_variance: sigma2, llr_clip: 2.0 };
        let mut clipped_bits = 0usize;
        for trial in 0..10 {
            let (h, y, _) = problem(&mut rng, c, sigma2);
            let soft = det.detect_soft(&h, &y, c);
            let expect = oracle_llrs(&h, &y, c, sigma2, det.llr_clip);
            for (bit, (&got, &want)) in soft.llrs.iter().zip(&expect).enumerate() {
                assert!(got.abs() <= det.llr_clip + 1e-12, "{c:?} trial {trial} bit {bit}");
                assert!(
                    (got - want).abs() < 1e-6,
                    "{c:?} trial {trial} bit {bit}: got {got}, clamped oracle {want}"
                );
                if got.abs() > det.llr_clip - 1e-9 {
                    clipped_bits += 1;
                }
            }
        }
        assert!(clipped_bits > 0, "{c:?}: low noise must clip some bits");
    }
}

#[test]
fn workspace_reuse_is_bit_identical_to_fresh_calls() {
    // The frame receiver drives soft detection through one reused
    // workspace; its outputs must match per-call detection bit for bit.
    let mut rng = StdRng::seed_from_u64(7103);
    let c = Constellation::Qam16;
    let sigma2 = 0.3;
    let det = SoftGeosphereDetector::new(sigma2);
    let mut ws = det.make_workspace();
    let mut reused = SoftDetection::default();
    for trial in 0..15 {
        let (h, y, _) = problem(&mut rng, c, sigma2);
        let fresh = det.detect_soft(&h, &y, c);
        det.detect_soft_into(&h, &y, c, &mut ws, &mut reused);
        assert_eq!(reused.symbols, fresh.symbols, "trial {trial}");
        assert_eq!(reused.stats, fresh.stats, "trial {trial}");
        assert_eq!(reused.llrs.len(), fresh.llrs.len());
        for (a, b) in reused.llrs.iter().zip(&fresh.llrs) {
            assert_eq!(a.to_bits(), b.to_bits(), "trial {trial}");
        }
    }
}
