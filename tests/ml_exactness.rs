//! Cross-crate oracle tests: every sphere decoder configuration must return
//! the exhaustive maximum-likelihood solution, for every constellation and
//! MIMO size where exhaustive search is feasible — under noise levels high
//! enough that the search is nontrivial.

use geosphere::core::{
    ethsd_decoder, geosphere_decoder, geosphere_zigzag_only_decoder, residual_norm_sqr,
    MimoDetector, MlDetector, SphereDecoder,
};
use geosphere::core::sphere::{ExhaustiveSortFactory, GeosphereFactory};
use geosphere::channel::{sample_cn, RayleighChannel};
use geosphere::linalg::{Complex, Matrix};
use geosphere::modulation::Constellation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(
    rng: &mut StdRng,
    c: Constellation,
    na: usize,
    nc: usize,
    noise: f64,
) -> (Matrix, Vec<Complex>) {
    let h = RayleighChannel::new(na, nc).sample_matrix(rng).scale(c.scale());
    let pts = c.points();
    let s: Vec<_> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
    let mut y = geosphere::core::apply_channel(&h, &s);
    for v in y.iter_mut() {
        *v += sample_cn(rng, noise);
    }
    (h, y)
}

fn assert_ml<D: MimoDetector>(det: &D, h: &Matrix, y: &[Complex], c: Constellation, label: &str) {
    let got = residual_norm_sqr(h, y, &det.detect(h, y, c).symbols);
    let ml = residual_norm_sqr(h, y, &MlDetector.detect(h, y, c).symbols);
    assert!(
        (got - ml).abs() < 1e-9,
        "{label} {c:?}: residual {got} vs exhaustive {ml}"
    );
}

#[test]
fn geosphere_is_ml_qpsk_up_to_4x4() {
    let mut rng = StdRng::seed_from_u64(1001);
    let det = geosphere_decoder();
    for nc in 1..=4 {
        for _ in 0..25 {
            let (h, y) = random_problem(&mut rng, Constellation::Qpsk, 4, nc, 0.8);
            assert_ml(&det, &h, &y, Constellation::Qpsk, "geosphere");
        }
    }
}

#[test]
fn geosphere_is_ml_16qam_3x3() {
    let mut rng = StdRng::seed_from_u64(1002);
    let det = geosphere_decoder();
    for _ in 0..40 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam16, 3, 3, 0.4);
        assert_ml(&det, &h, &y, Constellation::Qam16, "geosphere");
    }
}

#[test]
fn geosphere_is_ml_64qam_2x2() {
    let mut rng = StdRng::seed_from_u64(1003);
    let det = geosphere_decoder();
    for _ in 0..40 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam64, 2, 2, 0.2);
        assert_ml(&det, &h, &y, Constellation::Qam64, "geosphere");
    }
}

#[test]
fn zigzag_only_and_ethsd_are_ml_too() {
    let mut rng = StdRng::seed_from_u64(1004);
    for _ in 0..30 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam16, 3, 3, 0.5);
        assert_ml(&geosphere_zigzag_only_decoder(), &h, &y, Constellation::Qam16, "zigzag-only");
        assert_ml(&ethsd_decoder(), &h, &y, Constellation::Qam16, "ethsd");
        assert_ml(
            &SphereDecoder::new(ExhaustiveSortFactory),
            &h,
            &y,
            Constellation::Qam16,
            "full-sort",
        );
    }
}

#[test]
fn sorted_qr_preserves_ml() {
    let mut rng = StdRng::seed_from_u64(1005);
    let det = SphereDecoder::new(GeosphereFactory::full()).with_sorted_qr();
    for _ in 0..30 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam16, 4, 3, 0.5);
        assert_ml(&det, &h, &y, Constellation::Qam16, "sorted-qr");
    }
}

#[test]
fn extreme_noise_still_ml() {
    // With noise ≫ signal, the ML point is far from the transmitted one and
    // the radius shrinks slowly — the hardest case for pruning soundness.
    let mut rng = StdRng::seed_from_u64(1006);
    let det = geosphere_decoder();
    for _ in 0..20 {
        let (h, y) = random_problem(&mut rng, Constellation::Qpsk, 3, 3, 5.0);
        assert_ml(&det, &h, &y, Constellation::Qpsk, "extreme-noise");
    }
}

#[test]
fn poorly_conditioned_channels_still_ml() {
    // Nearly-parallel columns: exactly the regime the paper targets.
    let mut rng = StdRng::seed_from_u64(1007);
    let det = geosphere_decoder();
    let c = Constellation::Qam16;
    for _ in 0..30 {
        let base: Vec<Complex> = (0..3).map(|_| sample_cn(&mut rng, 1.0)).collect();
        let h = Matrix::from_fn(3, 3, |r, col| {
            base[r] + sample_cn(&mut rng, if col == 0 { 0.0 } else { 0.02 })
        })
        .scale(c.scale());
        let pts = c.points();
        let s: Vec<_> = (0..3).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = geosphere::core::apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(&mut rng, 0.05);
        }
        assert_ml(&det, &h, &y, c, "ill-conditioned");
    }
}
