//! Cross-crate oracle tests: every sphere decoder configuration must return
//! the exhaustive maximum-likelihood solution, for every constellation and
//! MIMO size where exhaustive search is feasible — under noise levels high
//! enough that the search is nontrivial.

use geosphere::channel::{sample_cn, RayleighChannel};
use geosphere::core::sphere::{ExhaustiveSortFactory, GeosphereFactory};
use geosphere::core::{
    ethsd_decoder, geosphere_decoder, geosphere_zigzag_only_decoder, residual_norm_sqr,
    FsdDetector, KBestDetector, MimoDetector, MlDetector, MmseSicDetector, SphereDecoder,
    ZfDetector,
};
use geosphere::linalg::{Complex, Matrix};
use geosphere::modulation::Constellation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(
    rng: &mut StdRng,
    c: Constellation,
    na: usize,
    nc: usize,
    noise: f64,
) -> (Matrix, Vec<Complex>) {
    let h = RayleighChannel::new(na, nc).sample_matrix(rng).scale(c.scale());
    let pts = c.points();
    let s: Vec<_> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
    let mut y = geosphere::core::apply_channel(&h, &s);
    for v in y.iter_mut() {
        *v += sample_cn(rng, noise);
    }
    (h, y)
}

fn assert_ml<D: MimoDetector>(det: &D, h: &Matrix, y: &[Complex], c: Constellation, label: &str) {
    let got = residual_norm_sqr(h, y, &det.detect(h, y, c).symbols);
    let ml = residual_norm_sqr(h, y, &MlDetector.detect(h, y, c).symbols);
    assert!((got - ml).abs() < 1e-9, "{label} {c:?}: residual {got} vs exhaustive {ml}");
}

#[test]
fn geosphere_is_ml_qpsk_up_to_4x4() {
    let mut rng = StdRng::seed_from_u64(1001);
    let det = geosphere_decoder();
    for nc in 1..=4 {
        for _ in 0..25 {
            let (h, y) = random_problem(&mut rng, Constellation::Qpsk, 4, nc, 0.8);
            assert_ml(&det, &h, &y, Constellation::Qpsk, "geosphere");
        }
    }
}

#[test]
fn geosphere_is_ml_16qam_3x3() {
    let mut rng = StdRng::seed_from_u64(1002);
    let det = geosphere_decoder();
    for _ in 0..40 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam16, 3, 3, 0.4);
        assert_ml(&det, &h, &y, Constellation::Qam16, "geosphere");
    }
}

#[test]
fn geosphere_is_ml_64qam_2x2() {
    let mut rng = StdRng::seed_from_u64(1003);
    let det = geosphere_decoder();
    for _ in 0..40 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam64, 2, 2, 0.2);
        assert_ml(&det, &h, &y, Constellation::Qam64, "geosphere");
    }
}

#[test]
fn zigzag_only_and_ethsd_are_ml_too() {
    let mut rng = StdRng::seed_from_u64(1004);
    for _ in 0..30 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam16, 3, 3, 0.5);
        assert_ml(&geosphere_zigzag_only_decoder(), &h, &y, Constellation::Qam16, "zigzag-only");
        assert_ml(&ethsd_decoder(), &h, &y, Constellation::Qam16, "ethsd");
        assert_ml(
            &SphereDecoder::new(ExhaustiveSortFactory),
            &h,
            &y,
            Constellation::Qam16,
            "full-sort",
        );
    }
}

#[test]
fn sorted_qr_preserves_ml() {
    let mut rng = StdRng::seed_from_u64(1005);
    let det = SphereDecoder::new(GeosphereFactory::full()).with_sorted_qr();
    for _ in 0..30 {
        let (h, y) = random_problem(&mut rng, Constellation::Qam16, 4, 3, 0.5);
        assert_ml(&det, &h, &y, Constellation::Qam16, "sorted-qr");
    }
}

#[test]
fn extreme_noise_still_ml() {
    // With noise ≫ signal, the ML point is far from the transmitted one and
    // the radius shrinks slowly — the hardest case for pruning soundness.
    let mut rng = StdRng::seed_from_u64(1006);
    let det = geosphere_decoder();
    for _ in 0..20 {
        let (h, y) = random_problem(&mut rng, Constellation::Qpsk, 3, 3, 5.0);
        assert_ml(&det, &h, &y, Constellation::Qpsk, "extreme-noise");
    }
}

// ---------------------------------------------------------------------------
// Scenario-matrix conformance suite
//
// Every detector in the workspace, checked against the exhaustive-ML oracle
// across {QPSK, 16-QAM, 64-QAM} × {2×2, 4×4} × {low, high} noise. Seeds are
// derived deterministically from the scenario coordinates, so a failure
// names its scenario and replays identically.
// ---------------------------------------------------------------------------

const MATRIX_CONSTELLATIONS: [Constellation; 3] =
    [Constellation::Qpsk, Constellation::Qam16, Constellation::Qam64];

/// (AP antennas, client streams).
const MATRIX_SIZES: [(usize, usize); 2] = [(2, 2), (4, 4)];

const MATRIX_TRIALS: usize = 4;

/// Noise variances keeping the sphere search nontrivial without drowning
/// the constellation (denser grids get less absolute noise).
fn matrix_noise(c: Constellation, high: bool) -> f64 {
    let high_level = match c {
        Constellation::Qpsk => 0.8,
        Constellation::Qam16 => 0.4,
        _ => 0.2,
    };
    if high {
        high_level
    } else {
        0.02
    }
}

/// One seed per scenario coordinate, so every assertion is replayable.
fn matrix_seed(c: Constellation, na: usize, nc: usize, high: bool, trial: usize) -> u64 {
    0x6d6c_0000
        + c.size() as u64 * 1_000_000
        + na as u64 * 100_000
        + nc as u64 * 10_000
        + u64::from(high) * 1_000
        + trial as u64
}

/// The ML oracle residual. `MlDetector` enumerates `|O|^nc` hypotheses —
/// fine everywhere in the matrix except 64-QAM 4×4 (16.7M hypotheses, too
/// slow for a debug-mode test); there the full-sort sphere reference (also
/// exact ML, cross-checked against `MlDetector` on every smaller scenario
/// and in the engine's own tests) stands in.
fn oracle_residual(h: &Matrix, y: &[Complex], c: Constellation) -> f64 {
    if MlDetector::hypothesis_count(c, h.cols()) <= 70_000 {
        residual_norm_sqr(h, y, &MlDetector.detect(h, y, c).symbols)
    } else {
        let reference = SphereDecoder::new(ExhaustiveSortFactory);
        residual_norm_sqr(h, y, &reference.detect(h, y, c).symbols)
    }
}

#[test]
fn matrix_exact_detectors_match_oracle() {
    // Geosphere (full), the zigzag-only ablation, and ETH-SD all claim
    // exact ML: their residual must equal the oracle's everywhere.
    for c in MATRIX_CONSTELLATIONS {
        for (na, nc) in MATRIX_SIZES {
            for high in [false, true] {
                for trial in 0..MATRIX_TRIALS {
                    let mut rng = StdRng::seed_from_u64(matrix_seed(c, na, nc, high, trial));
                    let (h, y) = random_problem(&mut rng, c, na, nc, matrix_noise(c, high));
                    let ml = oracle_residual(&h, &y, c);
                    for det in [
                        ("geosphere", geosphere_decoder()),
                        ("zigzag-only", geosphere_zigzag_only_decoder()),
                    ] {
                        let got = residual_norm_sqr(&h, &y, &det.1.detect(&h, &y, c).symbols);
                        assert!(
                            (got - ml).abs() < 1e-9,
                            "{} {c:?} {na}x{nc} high={high} trial={trial}: {got} vs ML {ml}",
                            det.0
                        );
                    }
                    let got = residual_norm_sqr(&h, &y, &ethsd_decoder().detect(&h, &y, c).symbols);
                    assert!(
                        (got - ml).abs() < 1e-9,
                        "ethsd {c:?} {na}x{nc} high={high} trial={trial}: {got} vs ML {ml}"
                    );
                }
            }
        }
    }
}

#[test]
fn matrix_suboptimal_detectors_never_beat_oracle() {
    // K-best, FSD, MMSE-SIC, and ZF are approximations: the oracle's
    // residual must lower-bound theirs on every scenario (an approximation
    // "beating" exhaustive ML means the oracle — or the residual math — is
    // broken).
    for c in MATRIX_CONSTELLATIONS {
        for (na, nc) in MATRIX_SIZES {
            for high in [false, true] {
                for trial in 0..MATRIX_TRIALS {
                    let noise = matrix_noise(c, high);
                    let mut rng = StdRng::seed_from_u64(matrix_seed(c, na, nc, high, trial) + 500);
                    let (h, y) = random_problem(&mut rng, c, na, nc, noise);
                    let ml = oracle_residual(&h, &y, c);
                    let dets: Vec<(&str, Box<dyn MimoDetector>)> = vec![
                        ("kbest", Box::new(KBestDetector::new(16))),
                        ("fsd", Box::new(FsdDetector::new())),
                        ("mmse-sic", Box::new(MmseSicDetector::new(noise))),
                        ("zf", Box::new(ZfDetector)),
                    ];
                    for (name, det) in dets {
                        let got = residual_norm_sqr(&h, &y, &det.detect(&h, &y, c).symbols);
                        assert!(
                            got >= ml - 1e-9,
                            "{name} {c:?} {na}x{nc} high={high} trial={trial}: \
                             residual {got} below exhaustive ML {ml}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn matrix_all_detectors_recover_at_negligible_noise() {
    // At vanishing noise every detector in the workspace — exact or not —
    // must return the transmitted vector (conformance with the oracle in
    // the easy regime; failures here are wiring bugs, not statistics).
    for c in MATRIX_CONSTELLATIONS {
        for (na, nc) in MATRIX_SIZES {
            for trial in 0..MATRIX_TRIALS {
                let mut rng = StdRng::seed_from_u64(matrix_seed(c, na, nc, false, trial) + 900);
                let h = RayleighChannel::new(na, nc).sample_matrix(&mut rng).scale(c.scale());
                let pts = c.points();
                let s: Vec<_> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
                let y = geosphere::core::apply_channel(&h, &s);
                let dets: Vec<(&str, Box<dyn MimoDetector>)> = vec![
                    ("geosphere", Box::new(geosphere_decoder())),
                    ("zigzag-only", Box::new(geosphere_zigzag_only_decoder())),
                    ("ethsd", Box::new(ethsd_decoder())),
                    ("kbest", Box::new(KBestDetector::new(16))),
                    ("fsd", Box::new(FsdDetector::new())),
                    ("mmse-sic", Box::new(MmseSicDetector::new(1e-9))),
                    ("zf", Box::new(ZfDetector)),
                ];
                for (name, det) in dets {
                    assert_eq!(
                        det.detect(&h, &y, c).symbols,
                        s,
                        "{name} {c:?} {na}x{nc} trial={trial}"
                    );
                }
            }
        }
    }
}

#[test]
fn poorly_conditioned_channels_still_ml() {
    // Nearly-parallel columns: exactly the regime the paper targets.
    let mut rng = StdRng::seed_from_u64(1007);
    let det = geosphere_decoder();
    let c = Constellation::Qam16;
    for _ in 0..30 {
        let base: Vec<Complex> = (0..3).map(|_| sample_cn(&mut rng, 1.0)).collect();
        let h = Matrix::from_fn(3, 3, |r, col| {
            base[r] + sample_cn(&mut rng, if col == 0 { 0.0 } else { 0.02 })
        })
        .scale(c.scale());
        let pts = c.points();
        let s: Vec<_> = (0..3).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = geosphere::core::apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(&mut rng, 0.05);
        }
        assert_ml(&det, &h, &y, c, "ill-conditioned");
    }
}
