//! Property-based tests (proptest) on the core invariants of every layer.

use geosphere::coding::{conv, viterbi, Interleaver, Scrambler};
use geosphere::core::geoprune::{axis_offset, distance_lower_bound};
use geosphere::core::sphere::{EnumeratorFactory, GeosphereFactory, HessFactory, NodeEnumerator};
use geosphere::core::DetectorStats;
use geosphere::linalg::{qr_decompose, singular_values, Complex, Matrix};
use geosphere::modulation::{map_bits, unmap_point, AxisZigzag, Constellation};
use proptest::prelude::*;

fn constellation_strategy() -> impl Strategy<Value = Constellation> {
    prop_oneof![
        Just(Constellation::Qpsk),
        Just(Constellation::Qam16),
        Just(Constellation::Qam64),
        Just(Constellation::Qam256),
    ]
}

fn complex_strategy(range: f64) -> impl Strategy<Value = Complex> {
    (-range..range, -range..range).prop_map(|(re, im)| Complex::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- modulation ---

    #[test]
    fn slice_is_argmin(c in constellation_strategy(), y in complex_strategy(20.0)) {
        let sliced = c.slice(y);
        for p in c.points() {
            prop_assert!(sliced.dist_sqr(y) <= p.dist_sqr(y) + 1e-9);
        }
    }

    #[test]
    fn gray_mapping_roundtrips(c in constellation_strategy(), sym in 0usize..256) {
        let sym = sym % c.size();
        let bits: Vec<bool> = (0..c.bits_per_symbol()).rev().map(|k| (sym >> k) & 1 == 1).collect();
        prop_assert_eq!(unmap_point(c, map_bits(c, &bits)), bits);
    }

    #[test]
    fn axis_zigzag_sorted_and_complete(c in constellation_strategy(), t in -20.0f64..20.0) {
        let order: Vec<i32> = AxisZigzag::new(c, t).collect();
        prop_assert_eq!(order.len(), c.side());
        for w in order.windows(2) {
            prop_assert!((w[0] as f64 - t).abs() <= (w[1] as f64 - t).abs() + 1e-12);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, c.axis_levels());
    }

    // --- enumerators: the heart of the paper ---

    #[test]
    fn zigzag_enumeration_matches_bruteforce_sort(
        c in constellation_strategy(),
        center in complex_strategy(18.0),
        gain in 0.01f64..10.0,
    ) {
        let mut stats = DetectorStats::default();
        let mut e = GeosphereFactory::zigzag_only().make(c, center, gain, &mut stats);
        let mut got = Vec::new();
        while let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
            got.push(ch.cost);
        }
        let mut expect: Vec<f64> =
            c.points().iter().map(|p| gain * p.dist_sqr(center)).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), expect.len());
        for (g, x) in got.iter().zip(&expect) {
            prop_assert!((g - x).abs() < 1e-9, "got {} expected {}", g, x);
        }
    }

    #[test]
    fn hess_enumeration_matches_bruteforce_sort(
        c in constellation_strategy(),
        center in complex_strategy(18.0),
    ) {
        let mut stats = DetectorStats::default();
        let mut e = HessFactory.make(c, center, 1.0, &mut stats);
        let mut got = Vec::new();
        while let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
            got.push(ch.cost);
        }
        let mut expect: Vec<f64> = c.points().iter().map(|p| p.dist_sqr(center)).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, x) in got.iter().zip(&expect) {
            prop_assert!((g - x).abs() < 1e-9);
        }
    }

    #[test]
    fn geometric_bound_never_exceeds_exact(
        c in constellation_strategy(),
        y in complex_strategy(18.0),
    ) {
        let slice = c.slice(y);
        for p in c.points() {
            let bound = distance_lower_bound(
                axis_offset(p.i, slice.i),
                axis_offset(p.q, slice.q),
            );
            prop_assert!(bound <= p.dist_sqr(y) + 1e-9);
        }
    }

    // --- linear algebra ---

    #[test]
    fn qr_reconstructs_and_q_unitary(
        entries in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 16),
    ) {
        let data: Vec<Complex> = entries.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let h = Matrix::from_rows(4, 4, &data);
        let qr = qr_decompose(&h);
        prop_assert!(qr.reconstruct().max_abs_diff(&h) < 1e-9);
        prop_assert!(qr.q.gram().max_abs_diff(&Matrix::identity(4)) < 1e-9);
        for i in 0..4 {
            prop_assert!(qr.r[(i, i)].im.abs() < 1e-10);
            prop_assert!(qr.r[(i, i)].re >= -1e-12);
        }
    }

    #[test]
    fn singular_values_match_frobenius(
        entries in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 12),
    ) {
        let data: Vec<Complex> = entries.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let h = Matrix::from_rows(4, 3, &data);
        let sv = singular_values(&h);
        prop_assert_eq!(sv.len(), 3);
        let energy: f64 = sv.iter().map(|s| s * s).sum();
        prop_assert!((energy - h.frobenius_norm_sqr()).abs() < 1e-6 * energy.max(1.0));
        for w in sv.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrips(
        entries in proptest::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 16),
    ) {
        let orig: Vec<Complex> = entries.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let mut data = orig.clone();
        geosphere::linalg::fft(&mut data);
        geosphere::linalg::ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
        // Parseval: the FFT preserves energy up to the 1/N convention.
        let mut freq = orig.clone();
        geosphere::linalg::fft(&mut freq);
        let time_energy: f64 = orig.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / 16.0;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }

    #[test]
    fn cholesky_reconstructs_gram_matrix(
        entries in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 16),
    ) {
        // H*·H + εI is Hermitian positive definite for any H, the shape the
        // MMSE front-ends feed to the Cholesky solver.
        let data: Vec<Complex> = entries.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let h = Matrix::from_rows(4, 4, &data);
        let mut a = h.gram();
        for i in 0..4 {
            a[(i, i)] += Complex::new(1e-3, 0.0);
        }
        let chol = geosphere::linalg::cholesky(&a).expect("PD by construction");
        prop_assert!(chol.reconstruct().max_abs_diff(&a) < 1e-9);
        prop_assert!(chol.det() > 0.0);
    }

    // --- batched decoding engine ---

    #[test]
    fn batched_detection_matches_serial(
        entries in proptest::collection::vec((-1.5f64..1.5, -1.5f64..1.5), 4),
        noise in proptest::collection::vec((-0.2f64..0.2, -0.2f64..0.2), 8),
        workers in 1usize..6,
    ) {
        use geosphere::core::{BatchDetector, DetectionBatch, DetectionJob, MimoDetector};

        let c = Constellation::Qam16;
        let data: Vec<Complex> = entries.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let mut h = Matrix::from_rows(2, 2, &data).scale(c.scale());
        // Keep the channel comfortably invertible so the search terminates
        // fast; degenerate matrices are covered by the seeded suites.
        h[(0, 0)] += Complex::new(1.0, 0.0);
        h[(1, 1)] += Complex::new(1.0, 0.0);
        let channels = vec![h];
        let pts = c.points();
        let jobs: Vec<DetectionJob> = noise
            .chunks(2)
            .enumerate()
            .map(|(j, w)| {
                let s = [pts[j % pts.len()], pts[(j * 7 + 3) % pts.len()]];
                let mut y = geosphere::core::apply_channel(&channels[0], &s);
                for (v, &(re, im)) in y.iter_mut().zip(w) {
                    *v += Complex::new(re, im);
                }
                DetectionJob { channel: 0, y }
            })
            .collect();
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let det = geosphere::core::geosphere_decoder();
        let serial = batch.detect_serial(&det);
        let amortized = det.detect_batch(&batch);
        let parallel = BatchDetector::new(&det, workers).detect_batch(&batch);
        for ((s, a), p) in serial.iter().zip(&amortized).zip(&parallel) {
            prop_assert_eq!(&s.symbols, &a.symbols);
            prop_assert_eq!(&s.symbols, &p.symbols);
            prop_assert_eq!(s.stats, a.stats);
            prop_assert_eq!(s.stats, p.stats);
        }
    }

    // --- coding ---

    #[test]
    fn conv_viterbi_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        prop_assert_eq!(viterbi::decode(&conv::encode(&bits)), bits);
    }

    #[test]
    fn viterbi_corrects_one_flip(
        bits in proptest::collection::vec(any::<bool>(), 20..100),
        pos_frac in 0.0f64..1.0,
    ) {
        let mut coded = conv::encode(&bits);
        let pos = ((coded.len() - 1) as f64 * pos_frac) as usize;
        coded[pos] = !coded[pos];
        prop_assert_eq!(viterbi::decode(&coded), bits);
    }

    #[test]
    fn scrambler_involution(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let once = Scrambler::default_seed().apply(&bits);
        let twice = Scrambler::default_seed().apply(&once);
        prop_assert_eq!(twice, bits);
    }

    #[test]
    fn interleaver_roundtrip(
        c in constellation_strategy(),
        seed_bits in proptest::collection::vec(any::<bool>(), 0..10),
    ) {
        let n_cbps = 48 * c.bits_per_symbol();
        let bits: Vec<bool> =
            (0..n_cbps).map(|k| seed_bits.get(k % seed_bits.len().max(1)).copied().unwrap_or(false)).collect();
        let il = Interleaver::new(n_cbps, c.bits_per_symbol());
        prop_assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
    }

    #[test]
    fn crc_detects_any_single_flip(
        bits in proptest::collection::vec(any::<bool>(), 1..120),
        pos_frac in 0.0f64..1.0,
    ) {
        let framed = geosphere::coding::append_crc(&bits);
        let mut corrupted = framed.clone();
        let pos = ((corrupted.len() - 1) as f64 * pos_frac) as usize;
        corrupted[pos] = !corrupted[pos];
        prop_assert_eq!(geosphere::coding::check_crc(&framed), Some(bits));
        prop_assert_eq!(geosphere::coding::check_crc(&corrupted), None);
    }

    // --- channel metrics ---

    #[test]
    fn lambda_at_least_unity(
        entries in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 8),
    ) {
        let data: Vec<Complex> = entries.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let h = Matrix::from_rows(4, 2, &data);
        for l in geosphere::channel::zf_snr_degradation(&h) {
            prop_assert!(l >= 1.0 - 1e-9);
        }
        prop_assert!(geosphere::channel::lambda_max(&h) >= 1.0 - 1e-9);
    }

    // --- telemetry histograms ---

    #[test]
    fn histogram_merge_preserves_totals(
        // Values span every histogram octave a latency can reach (up to
        // ~5 hours in nanoseconds) while keeping the running sums far
        // from u64 overflow — the documented domain of the recorder.
        a in proptest::collection::vec(0u64..1 << 44, 0..200),
        b in proptest::collection::vec(0u64..1 << 44, 0..200),
    ) {
        use geosphere::prof::hist::{HistogramSnapshot, LogHistogram};
        let (ha, hb) = (LogHistogram::new(), LogHistogram::new());
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());

        // Merge is exact on counts, sums, and max — exactly what one
        // histogram fed both value streams would have reported.
        let mut merged = sa.clone();
        merged.merge(&sb);
        prop_assert_eq!(merged.count(), a.len() as u64 + b.len() as u64);
        let sum = |vs: &[u64]| vs.iter().sum::<u64>();
        prop_assert_eq!(merged.sum(), sum(&a) + sum(&b));
        prop_assert_eq!(merged.max(), a.iter().chain(&b).copied().max().unwrap_or(0));

        // Merging in the other order gives the identical snapshot, and
        // the empty snapshot is the identity.
        let mut flipped = sb.clone();
        flipped.merge(&sa);
        prop_assert_eq!(&flipped, &merged);
        let mut ident = HistogramSnapshot::empty();
        ident.merge(&merged);
        prop_assert_eq!(&ident, &merged);

        // Quantiles of the merge are bracketed by the per-side extremes
        // and never exceed the exact max.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let m = merged.quantile(q);
            prop_assert!(m <= merged.max());
            if !a.is_empty() && !b.is_empty() {
                prop_assert!(m >= sa.quantile(q).min(sb.quantile(q)));
            }
        }
    }
}
