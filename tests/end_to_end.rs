//! End-to-end integration tests spanning the whole stack: channel models →
//! PHY chain → detectors → frame verification, checking the paper's
//! qualitative claims at smoke-test scale.

use geosphere::channel::{ChannelModel, RayleighChannel, Testbed};
use geosphere::core::{ethsd_decoder, geosphere_decoder, MimoDetector, ZfDetector};
use geosphere::modulation::Constellation;
use geosphere::phy::{measure, uplink_frame, PhyConfig};
use geosphere::sim::{select_groups, testbed_throughput, DetectorKind, ExperimentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(c: Constellation) -> PhyConfig {
    PhyConfig { payload_bits: 512, ..PhyConfig::new(c) }
}

#[test]
fn frames_survive_good_channels_with_every_detector() {
    let mut rng = StdRng::seed_from_u64(2001);
    let model = RayleighChannel::new(4, 2);
    let ch = model.realize(&mut rng);
    for det in [&ZfDetector as &dyn MimoDetector, &ethsd_decoder(), &geosphere_decoder()] {
        let out = uplink_frame(&cfg(Constellation::Qam16), &ch, det, 35.0, &mut rng);
        assert!(out.client_ok.iter().all(|&ok| ok), "{} lost a frame at 35 dB", det.name());
    }
}

#[test]
fn geosphere_outperforms_zf_on_ill_conditioned_testbed() {
    // The paper's core throughput claim at integration-test scale.
    let tb = Testbed::office();
    let groups = select_groups(&tb, 4, 20.0, 5.0, 2);
    let mut zf_ok = 0usize;
    let mut geo_ok = 0usize;
    for (gi, g) in groups.iter().enumerate() {
        let model = tb.channel(g.ap, &g.clients, 4);
        let mut rng = StdRng::seed_from_u64(2002 + gi as u64);
        let zf = measure(&cfg(Constellation::Qam16), &model, &ZfDetector, 20.0, 5, &mut rng);
        let mut rng = StdRng::seed_from_u64(2002 + gi as u64);
        let geo =
            measure(&cfg(Constellation::Qam16), &model, &geosphere_decoder(), 20.0, 5, &mut rng);
        zf_ok += ((1.0 - zf.fer) * 100.0) as usize;
        geo_ok += ((1.0 - geo.fer) * 100.0) as usize;
    }
    assert!(geo_ok >= zf_ok, "Geosphere success {geo_ok} must be at least ZF success {zf_ok}");
}

#[test]
fn complexity_ordering_holds_through_the_phy() {
    // Per-subcarrier PED averages through the full coded pipeline:
    // Geosphere < ETH-SD on dense constellations.
    let mut rng = StdRng::seed_from_u64(2003);
    let model = RayleighChannel::new(4, 4);
    let c = Constellation::Qam64;
    let geo = measure(&cfg(c), &model, &geosphere_decoder(), 33.0, 3, &mut rng);
    let mut rng = StdRng::seed_from_u64(2003);
    let eth = measure(&cfg(c), &model, &ethsd_decoder(), 33.0, 3, &mut rng);
    assert!(
        geo.per_subcarrier.ped_calcs < eth.per_subcarrier.ped_calcs,
        "geo {} vs eth {}",
        geo.per_subcarrier.ped_calcs,
        eth.per_subcarrier.ped_calcs
    );
    // Same channel/noise seeds ⇒ identical visited nodes (paper §5.3).
    assert!(
        (geo.per_subcarrier.visited_nodes - eth.per_subcarrier.visited_nodes).abs() < 1e-9,
        "visited nodes must match: {} vs {}",
        geo.per_subcarrier.visited_nodes,
        eth.per_subcarrier.visited_nodes
    );
}

#[test]
fn rate_adaptation_picks_denser_constellations_at_higher_snr() {
    let params = ExperimentParams::quick();
    let tb = Testbed::office();
    let low = testbed_throughput(&params, &tb, 2, 4, 12.0, DetectorKind::Geosphere);
    let high = testbed_throughput(&params, &tb, 2, 4, 28.0, DetectorKind::Geosphere);
    assert!(
        high.constellation.size() >= low.constellation.size(),
        "higher SNR should not pick a sparser constellation: {:?} -> {:?}",
        low.constellation,
        high.constellation
    );
    assert!(high.throughput_mbps >= low.throughput_mbps);
}

#[test]
fn throughput_scales_with_clients_for_geosphere() {
    // Fig. 12's qualitative shape at smoke scale: 4-client Geosphere
    // throughput exceeds 1-client throughput.
    let params = ExperimentParams::quick();
    let tb = Testbed::office();
    let one = testbed_throughput(&params, &tb, 1, 4, 20.0, DetectorKind::Geosphere);
    let four = testbed_throughput(&params, &tb, 4, 4, 20.0, DetectorKind::Geosphere);
    assert!(
        four.throughput_mbps > one.throughput_mbps,
        "4 clients {:.1} must beat 1 client {:.1}",
        four.throughput_mbps,
        one.throughput_mbps
    );
}

#[test]
fn selective_channel_uplink_works() {
    // Frequency-selective Rayleigh: per-subcarrier channels differ; the
    // chain must still deliver frames at high SNR.
    let mut rng = StdRng::seed_from_u64(2006);
    let model = geosphere::channel::SelectiveRayleighChannel::indoor(4, 2);
    let ch = model.realize(&mut rng);
    assert_eq!(ch.num_subcarriers(), 48);
    let out = uplink_frame(&cfg(Constellation::Qam16), &ch, &geosphere_decoder(), 35.0, &mut rng);
    assert!(out.client_ok.iter().all(|&ok| ok));
}
