//! Integration tests for the beyond-the-paper extensions: soft output,
//! iterative reception, distributed MIMO, precoding, rate adaptation, and
//! trace-driven replay — each exercised across crate boundaries.

use geosphere::channel::{ChannelModel, ChannelTrace, RayleighChannel, Testbed, TraceReplay};
use geosphere::core::{SoftGeosphereDetector, VectorPerturbationPrecoder};
use geosphere::modulation::{unmap_points, Constellation};
use geosphere::phy::{measure, uplink_frame_iterative, uplink_frame_soft, PhyConfig};
use geosphere::sim::{DetectorKind, DistributedChannel, DistributedCluster, RateAdapter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg(c: Constellation) -> PhyConfig {
    PhyConfig { payload_bits: 512, ..PhyConfig::new(c) }
}

#[test]
fn soft_detection_llrs_decode_through_the_full_chain() {
    let mut rng = StdRng::seed_from_u64(3001);
    let ch = RayleighChannel::new(4, 2).realize(&mut rng);
    let out = uplink_frame_soft(&cfg(Constellation::Qam16), &ch, 30.0, &mut rng);
    assert!(out.client_ok.iter().all(|&ok| ok));
    assert!(out.stats.ped_calcs > 0);
}

#[test]
fn soft_detector_agrees_with_transmitted_bits() {
    let mut rng = StdRng::seed_from_u64(3002);
    let c = Constellation::Qam16;
    let h = RayleighChannel::new(3, 2).sample_matrix(&mut rng).scale(c.scale());
    let pts = c.points();
    let s: Vec<_> = (0..2).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
    let y = geosphere::core::apply_channel(&h, &s);
    let det = SoftGeosphereDetector::new(1e-4);
    let soft = det.detect_soft(&h, &y, c);
    let bits = unmap_points(c, &s);
    for (l, b) in soft.llrs.iter().zip(&bits) {
        assert_eq!(*l < 0.0, *b, "noiseless LLR signs must match the data");
    }
}

#[test]
fn turbo_iterations_never_hurt() {
    let model = RayleighChannel::new(4, 4);
    let mut one = 0usize;
    let mut two = 0usize;
    for t in 0..6 {
        let mut rng = StdRng::seed_from_u64(3100 + t);
        let ch = model.realize(&mut rng);
        one += uplink_frame_iterative(&cfg(Constellation::Qam16), &ch, 13.0, 1, &mut rng)
            .client_ok
            .iter()
            .filter(|&&ok| ok)
            .count();
        let mut rng = StdRng::seed_from_u64(3100 + t);
        let ch = model.realize(&mut rng);
        two += uplink_frame_iterative(&cfg(Constellation::Qam16), &ch, 13.0, 2, &mut rng)
            .client_ok
            .iter()
            .filter(|&&ok| ok)
            .count();
    }
    assert!(two >= one, "2-iteration turbo ({two}) must not lose to 1 ({one})");
}

#[test]
fn distributed_cluster_beats_single_ap_fer() {
    let tb = Testbed::office();
    let clients = vec![4usize, 6, 7, 9];
    let single = DistributedChannel::new(
        tb.clone(),
        DistributedCluster::synchronized(vec![2], 4),
        clients.clone(),
    );
    let joint =
        DistributedChannel::new(tb, DistributedCluster::synchronized(vec![0, 2], 4), clients);
    let det = DetectorKind::Geosphere.build(16.0);
    let mut rng = StdRng::seed_from_u64(3201);
    let m_single = measure(&cfg(Constellation::Qam16), &single, det.as_ref(), 16.0, 5, &mut rng);
    let mut rng = StdRng::seed_from_u64(3201);
    let m_joint = measure(&cfg(Constellation::Qam16), &joint, det.as_ref(), 16.0, 5, &mut rng);
    assert!(m_joint.fer <= m_single.fer, "joint {} vs single {}", m_joint.fer, m_single.fer);
}

#[test]
fn precoder_and_uplink_share_grid_conventions() {
    // The downlink precoder and uplink decoder must agree on constellation
    // geometry: precode, pass through the channel, slice mod-τ.
    let mut rng = StdRng::seed_from_u64(3301);
    let c = Constellation::Qam64;
    for _ in 0..10 {
        let h = RayleighChannel::new(3, 3).sample_matrix(&mut rng);
        let pre = VectorPerturbationPrecoder::new(&h, c).unwrap();
        let pts = c.points();
        let s: Vec<_> = (0..3).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let p = pre.precode(&s);
        let rx = h.mul_vec(&p.x);
        for (k, &want) in s.iter().enumerate() {
            assert_eq!(pre.demodulate(rx[k] / p.gamma.sqrt(), p.gamma, c), want);
        }
    }
}

#[test]
fn rate_adapter_consistent_with_detector_quality() {
    // On the same channel and SNR, the ML detector's pick must be at least
    // as dense as zero-forcing's.
    let tb = Testbed::office();
    let adapter = RateAdapter::default();
    let mut rng = StdRng::seed_from_u64(3401);
    for subset in tb.client_subsets(4).into_iter().step_by(131).take(8) {
        let ch = tb.channel(0, &subset, 4).realize(&mut rng);
        let zf = adapter.select(&ch, DetectorKind::Zf, 24.0);
        let geo = adapter.select(&ch, DetectorKind::Geosphere, 24.0);
        assert!(geo.size() >= zf.size(), "geo {geo:?} vs zf {zf:?}");
    }
}

#[test]
fn trace_replay_reproduces_measurements_exactly() {
    let mut rng = StdRng::seed_from_u64(3501);
    let model = RayleighChannel::new(4, 2);
    let trace = ChannelTrace::record(&model, 4, &mut rng);
    let text = trace.serialize();
    let restored = ChannelTrace::deserialize(&text).unwrap();

    let det = DetectorKind::Geosphere.build(25.0);
    let mut rng1 = StdRng::seed_from_u64(77);
    let m1 = measure(
        &cfg(Constellation::Qam16),
        &TraceReplay::new(trace),
        det.as_ref(),
        25.0,
        4,
        &mut rng1,
    );
    let mut rng2 = StdRng::seed_from_u64(77);
    let m2 = measure(
        &cfg(Constellation::Qam16),
        &TraceReplay::new(restored),
        det.as_ref(),
        25.0,
        4,
        &mut rng2,
    );
    assert_eq!(m1.fer, m2.fer);
    assert_eq!(m1.throughput_mbps, m2.throughput_mbps);
    assert!((m1.per_subcarrier.ped_calcs - m2.per_subcarrier.ped_calcs).abs() < 1e-12);
}
