//! The batched decode path must be bit-identical to the serial reference —
//! same seed, same outcome — at every worker count. This is the contract
//! that makes the worker pool safe to enable everywhere: parallelism can
//! change wall-clock, never results.

use geosphere::channel::{ChannelModel, RayleighChannel, SelectiveRayleighChannel};
use geosphere::core::{geosphere_decoder, BatchDetector, DetectionBatch, DetectionJob};
use geosphere::linalg::Matrix;
use geosphere::modulation::Constellation;
use geosphere::phy::{decode_frame_batched, uplink_frame, PhyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serial and batched uplink decodes of the same seeded frame must agree
/// exactly — symbols, CRC outcomes, and op counts — for ≥2 thread counts.
#[test]
fn batched_frame_decode_is_bit_identical_across_worker_counts() {
    for (c, na, nc, snr_db, seed) in [
        (Constellation::Qpsk, 2, 2, 12.0, 401u64),
        (Constellation::Qam16, 4, 2, 22.0, 402),
        (Constellation::Qam64, 4, 4, 28.0, 403),
    ] {
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(c) };
        let ch = RayleighChannel::new(na, nc).realize(&mut StdRng::seed_from_u64(seed));
        let det = geosphere_decoder();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let serial = uplink_frame(&cfg, &ch, &det, snr_db, &mut rng);

        for workers in [1usize, 2, 4, 8] {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let batched = decode_frame_batched(&cfg, &ch, &det, snr_db, &mut rng, workers);
            assert_eq!(batched.client_ok, serial.client_ok, "{c:?} {na}x{nc} workers={workers}");
            assert_eq!(batched.stats, serial.stats, "{c:?} {na}x{nc} workers={workers}");
            assert_eq!(batched.detections, serial.detections, "{c:?} workers={workers}");
            // The RNG must be consumed identically too: both paths leave the
            // generator in the same state for whatever runs next.
            let mut rng_serial = StdRng::seed_from_u64(seed ^ 0xABCD);
            uplink_frame(&cfg, &ch, &det, snr_db, &mut rng_serial);
            assert_eq!(
                rng.gen_range(0..u64::MAX),
                rng_serial.gen_range(0..u64::MAX),
                "{c:?} workers={workers}: RNG stream diverged"
            );
        }
    }
}

/// Same contract over a frequency-selective channel, where the batch's
/// channel table holds one matrix per subcarrier (the QR-amortization
/// fast path in the sphere decoders).
#[test]
fn batched_decode_matches_serial_on_selective_channel() {
    let c = Constellation::Qam16;
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(c) };
    let model = SelectiveRayleighChannel::indoor(4, 2);
    let ch = model.realize(&mut StdRng::seed_from_u64(77));
    let det = geosphere_decoder();

    let mut rng = StdRng::seed_from_u64(78);
    let serial = uplink_frame(&cfg, &ch, &det, 24.0, &mut rng);
    for workers in [2usize, 5] {
        let mut rng = StdRng::seed_from_u64(78);
        let batched = decode_frame_batched(&cfg, &ch, &det, 24.0, &mut rng, workers);
        assert_eq!(batched.client_ok, serial.client_ok, "workers={workers}");
        assert_eq!(batched.stats, serial.stats, "workers={workers}");
    }
}

/// The core-layer engine honors the same contract on a raw batch.
#[test]
fn core_batch_detector_is_deterministic() {
    let c = Constellation::Qam16;
    let mut rng = StdRng::seed_from_u64(91);
    let channels: Vec<Matrix> = (0..8)
        .map(|_| RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale()))
        .collect();
    let pts = c.points();
    let jobs: Vec<DetectionJob> = (0..96)
        .map(|j| {
            let channel = j % channels.len();
            let s: Vec<_> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = geosphere::core::apply_channel(&channels[channel], &s);
            for v in y.iter_mut() {
                *v += geosphere::channel::sample_cn(&mut rng, 0.05);
            }
            DetectionJob { channel, y }
        })
        .collect();
    let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
    let det = geosphere_decoder();

    let reference = batch.detect_serial(&det);
    for workers in [1usize, 3, 8] {
        let out = BatchDetector::new(&det, workers).detect_batch(&batch);
        assert_eq!(out.len(), reference.len());
        for (k, (a, b)) in out.iter().zip(&reference).enumerate() {
            assert_eq!(a.symbols, b.symbols, "job {k} workers {workers}");
            assert_eq!(a.stats, b.stats, "job {k} workers {workers}");
        }
    }
}
