//! Workspace-level pins for the stage-attributed profiler (`gs-prof`).
//!
//! Two build flavors, two contracts:
//!
//! * **`profile` off (the default):** the instrumentation must erase
//!   completely — [`gs_prof::ScopeGuard`] is a zero-size type, and driving
//!   a real frame through the receive chain records nothing.
//! * **`profile` on (the CI profiling leg):** per-stage counters are
//!   monotone across snapshots, their exclusive-time sum stays within the
//!   wall-clock envelope of the bracketed region (attribution partitions,
//!   never double-counts), and one decoded frame lights up every stage the
//!   hard receive chain passes through.
//!
//! The profile-on checks share one `#[test]` run sequentially: snapshots
//! aggregate process-global state, so concurrent test threads doing their
//! own decodes would break the wall-clock envelope comparison.

use geosphere_core::geosphere_decoder;
use gs_channel::{ChannelModel, SelectiveRayleighChannel};
use gs_modulation::Constellation;
use gs_phy::{decode_frame_batched_into, FrameWorkspace, PhyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One hard-decision frame through the batched chain, single worker so
/// every instrumented scope runs on the calling thread.
fn decode_one_frame(seed: u64, ws: &mut FrameWorkspace) {
    let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) };
    let model = SelectiveRayleighChannel {
        n_fft: 64,
        n_subcarriers: cfg.n_subcarriers,
        ..SelectiveRayleighChannel::indoor(4, 4)
    };
    let ch = model.realize(&mut StdRng::seed_from_u64(seed));
    let det = geosphere_decoder();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    decode_frame_batched_into(&cfg, &ch, &det, 22.0, &mut rng, 1, ws);
}

#[cfg(not(feature = "profile"))]
#[test]
fn disabled_build_erases_the_instrumentation() {
    // The guard must cost nothing to carry: a unit struct, so every
    // `let _scope = gs_prof::scope(..)` in the hot path compiles away.
    assert_eq!(std::mem::size_of::<gs_prof::ScopeGuard>(), 0);
    assert!(!gs_prof::enabled());

    // A real frame through the whole receive chain records nothing.
    let mut ws = FrameWorkspace::new();
    decode_one_frame(0xD15AB1ED, &mut ws);
    assert!(ws.outcome().stats.visited_nodes > 0, "the frame must actually have been decoded");
    let snap = gs_prof::snapshot();
    assert!(snap.is_empty(), "profiling compiled out, yet counters moved: {snap:?}");
    assert_eq!(snap.total_cycles(), 0);
    assert_eq!(snap.top_stage(), None);
}

#[cfg(feature = "profile")]
mod enabled {
    use super::*;
    use geosphere_core::MimoDetector;
    use gs_channel::RayleighChannel;
    use gs_prof::Stage;
    use proptest::prelude::*;

    /// Every stage's counters only ever grow between two snapshots.
    fn assert_monotone(before: &gs_prof::StageProfile, after: &gs_prof::StageProfile) {
        for (b, a) in before.stages.iter().zip(after.stages.iter()) {
            assert_eq!(b.stage, a.stage);
            assert!(a.cycles >= b.cycles, "{}: cycles went backwards", a.stage.name());
            assert!(
                a.invocations >= b.invocations,
                "{}: invocations went backwards",
                a.stage.name()
            );
            assert!(a.bytes >= b.bytes, "{}: bytes went backwards", a.stage.name());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Plain fns (no #[test] meta): invoked sequentially from the one
        // real test below so nothing else touches the global table while
        // a case is bracketed by snapshots.
        fn counters_are_monotone_across_detections(seed in 0u64..1 << 48, nc in 2usize..5) {
            let c = Constellation::Qpsk;
            let mut rng = StdRng::seed_from_u64(seed);
            let h = RayleighChannel::new(nc, nc).sample_matrix(&mut rng).scale(c.scale());
            let pts = c.points();
            let s: Vec<_> = (0..nc).map(|i| pts[(seed as usize + i) % pts.len()]).collect();
            let y = geosphere_core::apply_channel(&h, &s);

            let before = gs_prof::snapshot();
            let det = geosphere_decoder().detect(&h, &y, c);
            let after = gs_prof::snapshot();

            assert_monotone(&before, &after);
            let delta = after.delta(&before);
            prop_assert!(delta.stages[Stage::Enumerate.index()].invocations > 0);
            prop_assert!(det.stats.visited_nodes > 0);
        }
    }

    /// The exclusive-time attribution partitions instrumented time: the
    /// per-stage sum over a bracketed single-threaded region can never
    /// exceed that region's wall-clock tick count.
    fn assert_sum_within_wall_clock() {
        let mut ws = FrameWorkspace::new();
        decode_one_frame(0x5EED_0001, &mut ws); // warmup: slab growth off the clock

        let t0 = gs_prof::ticks();
        let before = gs_prof::snapshot();
        decode_one_frame(0x5EED_0002, &mut ws);
        let after = gs_prof::snapshot();
        let t1 = gs_prof::ticks();

        let spent = after.delta(&before).total_cycles();
        let wall = t1.saturating_sub(t0);
        assert!(
            spent <= wall,
            "stage table claims {spent} ticks inside a {wall}-tick envelope — \
             attribution double-counted"
        );
        // And the table is not trivially empty — it reaches most of the
        // envelope (the ≥95% coverage criterion is enforced by eye on the
        // bench dump; here a loose floor guards against scopes silently
        // detaching from the chain).
        assert!(
            spent as f64 >= wall as f64 * 0.5,
            "stage table covers only {spent} of {wall} ticks — scopes lost?"
        );
    }

    /// One decoded frame must light up every stage the hard single-worker
    /// receive chain passes through.
    fn assert_frame_touches_the_chain() {
        let mut ws = FrameWorkspace::new();
        let before = gs_prof::snapshot();
        decode_one_frame(0x5EED_0003, &mut ws);
        let delta = gs_prof::snapshot().delta(&before);

        for stage in [
            Stage::Plan,
            Stage::QrDecompose,
            Stage::Rotate,
            Stage::Enumerate,
            Stage::Recover,
            Stage::Viterbi,
            Stage::Crc,
        ] {
            let r = &delta.stages[stage.index()];
            assert!(r.cycles > 0, "stage {} recorded no cycles for a decoded frame", stage.name());
            assert!(r.invocations > 0, "stage {} recorded no invocations", stage.name());
        }
    }

    #[test]
    fn profiling_enabled_invariants() {
        assert!(gs_prof::enabled());
        counters_are_monotone_across_detections();
        assert_sum_within_wall_clock();
        assert_frame_touches_the_chain();
    }
}
