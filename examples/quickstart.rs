//! Quickstart: decode one 4×4 MIMO, 256-QAM received vector with
//! Geosphere and compare against zero-forcing and the ETH-SD baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geosphere::channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
use geosphere::core::{
    ethsd_decoder, geosphere_decoder, residual_norm_sqr, MimoDetector, ZfDetector,
};
use geosphere::modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let c = Constellation::Qam256;
    let snr_db = 28.0;

    // A random 4x4 channel, grid-domain scaled so transmitted grid symbols
    // have unit average power.
    let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());

    // Four clients each send one 256-QAM symbol.
    let points = c.points();
    let tx: Vec<GridPoint> = (0..4).map(|_| points[rng.gen_range(0..points.len())]).collect();
    println!("transmitted: {tx:?}");

    // The AP hears the superposition plus noise.
    let sigma2 = noise_variance_for_snr_db(snr_db);
    let mut y = geosphere::core::apply_channel(&h, &tx);
    for v in y.iter_mut() {
        *v += sample_cn(&mut rng, sigma2);
    }

    // Decode with three detectors.
    for det in [&ZfDetector as &dyn MimoDetector, &ethsd_decoder(), &geosphere_decoder()] {
        let d = det.detect(&h, &y, c);
        let errs = d.symbols.iter().zip(&tx).filter(|(a, b)| a != b).count();
        println!(
            "{:<12} symbols {:?}  (symbol errors: {errs}, residual {:.3}, PED calcs {}, visited nodes {})",
            det.name(),
            d.symbols,
            residual_norm_sqr(&h, &y, &d.symbols),
            d.stats.ped_calcs,
            d.stats.visited_nodes,
        );
    }

    println!(
        "\nGeosphere returns the exact maximum-likelihood solution — same error\n\
         performance as an exhaustive search over 256^4 ≈ 4.3e9 hypotheses —\n\
         at a few dozen distance computations per received vector."
    );
}
