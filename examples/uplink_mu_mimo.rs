//! Multi-user MIMO uplink over the emulated office testbed: four
//! single-antenna clients transmit simultaneously to a four-antenna AP
//! through coded OFDM frames; the AP decodes with zero-forcing and with
//! Geosphere and we compare delivered throughput.
//!
//! ```sh
//! cargo run --release --example uplink_mu_mimo
//! ```

use geosphere::channel::Testbed;
use geosphere::modulation::Constellation;
use geosphere::phy::{measure, PhyConfig};
use geosphere::sim::{select_groups, DetectorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let tb = Testbed::office();
    let snr_db = 20.0;
    let group = &select_groups(&tb, 4, snr_db, 5.0, 1)[0];
    println!(
        "selected AP {} with clients {:?} (mean link SNR {:.1} dB)",
        group.ap, group.clients, group.mean_snr_db
    );
    let model = tb.channel(group.ap, &group.clients, 4);

    for c in [Constellation::Qam16, Constellation::Qam64] {
        let cfg = PhyConfig { payload_bits: 1024, ..PhyConfig::new(c) };
        println!(
            "\n--- {c:?} (per-stream PHY rate {:.0} Mbps, {} OFDM symbols/frame) ---",
            cfg.phy_rate_mbps(),
            cfg.n_ofdm_symbols()
        );
        for kind in [DetectorKind::Zf, DetectorKind::MmseSic, DetectorKind::Geosphere] {
            let det = kind.build(snr_db);
            let mut rng = StdRng::seed_from_u64(99);
            let m = measure(&cfg, &model, det.as_ref(), snr_db, 10, &mut rng);
            println!(
                "{:<12} throughput {:>6.1} Mbps   FER {:>5.2}   per-client FER {:?}",
                kind.name(),
                m.throughput_mbps,
                m.fer,
                m.client_fer.iter().map(|f| (f * 100.0).round() / 100.0).collect::<Vec<_>>(),
            );
        }
    }

    println!(
        "\nOn this poorly-conditioned 4x4 office channel, zero-forcing's noise\n\
         amplification kills whole streams; Geosphere's ML detection keeps all\n\
         four clients' frames alive at the same SNR."
    );
}
