//! Downlink vector-perturbation (sphere-encoder) precoding — the §6.3
//! complement to Geosphere's uplink detection. On ill-conditioned
//! channels, plain channel-inversion precoding wastes transmit power the
//! same way uplink zero-forcing amplifies noise; a sphere search over the
//! perturbation lattice recovers it.
//!
//! ```sh
//! cargo run --release --example downlink_precoding
//! ```

use geosphere::channel::{kappa_sqr_db, sample_cn, RayleighChannel};
use geosphere::core::VectorPerturbationPrecoder;
use geosphere::linalg::{Complex, Matrix};
use geosphere::modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let c = Constellation::Qam16;
    let users = 4;
    let trials = 400;
    let sigma2 = 0.02;

    println!("Downlink, {users} users x {users} AP antennas, 16-QAM, σ² = {sigma2}");
    println!("{:>22} | {:>12} {:>12} {:>12}", "channel", "κ² dB (avg)", "ZF SER", "VP SER");

    for (label, perturb) in [("well-conditioned", 1.0), ("ill-conditioned", 0.08)] {
        let mut kappa_acc = 0.0;
        let mut zf_errs = 0usize;
        let mut vp_errs = 0usize;
        let mut total = 0usize;
        for _ in 0..trials {
            // rows = users. Ill-conditioned: user rows nearly parallel.
            let base: Vec<Complex> = (0..users).map(|_| sample_cn(&mut rng, 1.0)).collect();
            let h = if perturb >= 1.0 {
                RayleighChannel::new(users, users).sample_matrix(&mut rng)
            } else {
                Matrix::from_fn(users, users, |_, col| base[col] + sample_cn(&mut rng, perturb))
            };
            kappa_acc += kappa_sqr_db(&h).min(80.0);
            let Ok(pre) = VectorPerturbationPrecoder::new(&h, c) else { continue };
            let pts = c.points();
            let s: Vec<GridPoint> = (0..users).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            for vp_mode in [false, true] {
                let p = if vp_mode { pre.precode(&s) } else { pre.zf_precode(&s) };
                let rx = h.mul_vec(&p.x);
                for (k, &want) in s.iter().enumerate() {
                    let y = rx[k] / p.gamma.sqrt() + sample_cn(&mut rng, sigma2);
                    if pre.demodulate(y, p.gamma, c) != want {
                        if vp_mode {
                            vp_errs += 1;
                        } else {
                            zf_errs += 1;
                        }
                    }
                    if vp_mode {
                        total += 1;
                    }
                }
            }
        }
        println!(
            "{:>22} | {:>12.1} {:>12.4} {:>12.4}",
            label,
            kappa_acc / trials as f64,
            zf_errs as f64 / total as f64,
            vp_errs as f64 / total as f64,
        );
    }
    println!(
        "\nThe sphere-encoded perturbation absorbs the inversion power spike on\n\
         poorly-conditioned channels — the transmit-side twin of what Geosphere\n\
         does at the receiver. The two compose: precode the downlink, sphere-\n\
         decode the uplink."
    );
}
