//! Soft-output Geosphere detection (the paper's §7 future-work direction):
//! per-bit LLRs feed a soft Viterbi decoder, buying frames that hard
//! decisions lose at the same SNR.
//!
//! ```sh
//! cargo run --release --example soft_decoding
//! ```

use geosphere::channel::{ChannelModel, RayleighChannel};
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::{uplink_frame, uplink_frame_soft, PhyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let model = RayleighChannel::new(4, 4);
    let trials = 40;

    println!("4x4 uplink, 16-QAM rate-1/2, {trials} frames per point");
    println!("{:>8} | {:>10} {:>10} | {:>14}", "SNR dB", "hard FER", "soft FER", "soft PED cost");
    for snr in [10.0, 12.0, 14.0, 16.0] {
        let mut hard_fail = 0usize;
        let mut soft_fail = 0usize;
        let mut soft_ped = 0u64;
        let mut soft_det = 0u64;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let ch = model.realize(&mut rng);
            let hard = uplink_frame(&cfg, &ch, &geosphere_decoder(), snr, &mut rng);
            hard_fail += hard.client_ok.iter().filter(|&&ok| !ok).count();

            let mut rng = StdRng::seed_from_u64(1000 + t);
            let ch = model.realize(&mut rng);
            let soft = uplink_frame_soft(&cfg, &ch, snr, &mut rng);
            soft_fail += soft.client_ok.iter().filter(|&&ok| !ok).count();
            soft_ped += soft.stats.ped_calcs;
            soft_det += soft.detections;
        }
        let denom = (trials * 4) as f64;
        println!(
            "{:>8.0} | {:>10.3} {:>10.3} | {:>11.1}/sc",
            snr,
            hard_fail as f64 / denom,
            soft_fail as f64 / denom,
            soft_ped as f64 / soft_det as f64,
        );
    }
    println!(
        "\nThe soft path runs one constrained Geosphere search per bit (the\n\
         counter-hypothesis), so its complexity is a small multiple of the hard\n\
         decoder's — the structure §7 of the paper points to for reaching\n\
         MIMO capacity with iterative receivers."
    );
}
