//! Time-domain OFDM loopback: run one client frame through the full stack
//! — scramble/code/interleave/map, IFFT + cyclic prefix, a multipath
//! channel applied **in the time domain**, FFT demodulation, per-subcarrier
//! equalization, and the receive chain back to verified payload bits.
//!
//! This demonstrates that the per-subcarrier frequency-domain model used by
//! the evaluation is the exact behaviour of a real OFDM transceiver.
//!
//! ```sh
//! cargo run --release --example ofdm_loopback
//! ```

use geosphere::coding as _;
use geosphere::linalg::Complex;
use geosphere::modulation::Constellation;
use geosphere::phy::ofdm::{data_bins, demodulate_stream, modulate_stream};
use geosphere::phy::{receive_frame, transmit_frame, PhyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = PhyConfig { payload_bits: 1024, ..PhyConfig::new(Constellation::Qam16) };
    let payload: Vec<bool> = (0..cfg.payload_bits).map(|_| rng.gen_bool(0.5)).collect();

    // Transmit chain to grid symbols, then time-domain OFDM samples.
    let frame = transmit_frame(&cfg, &payload);
    let scale = cfg.constellation.scale();
    let freq_symbols: Vec<Vec<Complex>> = frame
        .symbols
        .iter()
        .map(|row| row.iter().map(|p| p.to_complex() * scale).collect())
        .collect();
    let tx_samples = modulate_stream(&freq_symbols);
    println!(
        "frame: {} OFDM symbols -> {} time-domain samples",
        freq_symbols.len(),
        tx_samples.len()
    );

    // A 3-tap multipath channel applied by direct convolution in time.
    let taps = [Complex::new(0.85, 0.1), Complex::new(0.3, -0.25), Complex::new(0.1, 0.15)];
    let mut rx_samples = vec![Complex::ZERO; tx_samples.len()];
    for (n, out) in rx_samples.iter_mut().enumerate() {
        for (d, &tap) in taps.iter().enumerate() {
            if n >= d {
                *out += tap * tx_samples[n - d];
            }
        }
        // Mild AWGN (~30 dB SNR).
        *out += Complex::new(rng.gen_range(-0.02..0.02), rng.gen_range(-0.02..0.02));
    }

    // Receive: FFT back to subcarriers, equalize with the known channel
    // frequency response, slice to grid symbols.
    let rx_freq = demodulate_stream(&rx_samples);
    let h_bins = geosphere::linalg::frequency_response(&taps, 64);
    let detected: Vec<Vec<_>> = rx_freq
        .iter()
        .map(|row| {
            row.iter()
                .zip(data_bins())
                .map(|(&v, bin)| cfg.constellation.slice(v / h_bins[bin] / scale))
                .collect()
        })
        .collect();

    match receive_frame(&cfg, &detected) {
        Some(rx_payload) if rx_payload == payload => {
            println!("payload recovered bit-exactly through the time-domain path ✓")
        }
        Some(_) => println!("CRC passed but payload differs — should never happen"),
        None => println!("frame lost (CRC failure)"),
    }
}
