//! Channel estimation in the loop: clients send time-orthogonal training
//! preambles, the AP least-squares-estimates the channel, and detection
//! runs on the *estimate* while the air uses the truth. Shows the FER cost
//! of real CSI versus the genie CSI the main evaluation uses.
//!
//! ```sh
//! cargo run --release --example estimated_csi
//! ```

use geosphere::channel::{ChannelModel, RayleighChannel};
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::{estimate_channel, estimation_mse, uplink_frame_with_csi, PhyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let model = RayleighChannel::new(4, 4);
    let trials = 30;

    println!("4x4 uplink, 16-QAM rate-1/2, {trials} frames per point");
    println!(
        "{:>8} | {:>12} {:>12} | {:>14} {:>14}",
        "SNR dB", "genie FER", "est. FER", "est. MSE", "σ̂²/σ²"
    );
    for snr in [16.0, 20.0, 24.0, 28.0] {
        let mut genie_fail = 0usize;
        let mut est_fail = 0usize;
        let mut mse_acc = 0.0;
        let mut var_ratio = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(5000 + t);
            let truth = model.realize(&mut rng);
            let genie =
                uplink_frame_with_csi(&cfg, &truth, None, &geosphere_decoder(), snr, &mut rng);
            genie_fail += genie.client_ok.iter().filter(|&&ok| !ok).count();

            let mut rng = StdRng::seed_from_u64(5000 + t);
            let truth = model.realize(&mut rng);
            let est = estimate_channel(&truth, snr, &mut rng);
            mse_acc += estimation_mse(&truth, &est.channel);
            var_ratio += est.noise_variance / geosphere::channel::noise_variance_for_snr_db(snr);
            let with_est = uplink_frame_with_csi(
                &cfg,
                &truth,
                Some(&est.channel),
                &geosphere_decoder(),
                snr,
                &mut rng,
            );
            est_fail += with_est.client_ok.iter().filter(|&&ok| !ok).count();
        }
        let denom = (trials * 4) as f64;
        println!(
            "{:>8.0} | {:>12.3} {:>12.3} | {:>14.5} {:>14.2}",
            snr,
            genie_fail as f64 / denom,
            est_fail as f64 / denom,
            mse_acc / trials as f64,
            var_ratio / trials as f64,
        );
    }
    println!(
        "\nLS estimation from two training repetitions costs ≲1 dB versus genie\n\
         CSI at practical SNRs, and the repetition residual estimates the noise\n\
         power the MMSE/SIC detectors and the soft decoder need."
    );
}
