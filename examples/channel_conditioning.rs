//! Channel-conditioning survey of the emulated office testbed — the §5.1
//! experiment in miniature: how often is the indoor MIMO channel poorly
//! conditioned, and how much SNR does zero-forcing give away?
//!
//! ```sh
//! cargo run --release --example channel_conditioning
//! ```

use geosphere::channel::{kappa_sqr_db, lambda_max_db};
use geosphere::channel::{ChannelModel, Testbed};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let tb = Testbed::office();
    let mut rng = StdRng::seed_from_u64(5);

    println!("Per-configuration conditioning over the office floorplan:");
    println!("{:<14} {:>12} {:>12} {:>18}", "config", "med κ² dB", "med Λ dB", "P(Λ > 5 dB)");
    for &(nc, na) in &[(2usize, 2usize), (2, 4), (3, 4), (4, 4)] {
        let kappa = tb.kappa_cdf(&mut rng, nc, na, 40);
        let lambda = tb.lambda_cdf(&mut rng, nc, na, 40);
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>17.0}%",
            format!("{nc}c x {na}a"),
            kappa.quantile(0.5),
            lambda.quantile(0.5),
            100.0 * lambda.fraction_above(5.0),
        );
    }

    // Zoom into one 4x4 link: per-subcarrier variation.
    let group: Vec<usize> = vec![4, 6, 7, 9];
    let ch = tb.channel(0, &group, 4).realize(&mut rng);
    println!("\nOne 4x4 link, per-subcarrier conditioning (every 6th subcarrier):");
    for k in (0..ch.num_subcarriers()).step_by(6) {
        let h = ch.subcarrier(k);
        println!(
            "  subcarrier {k:>2}: κ² = {:>5.1} dB, Λ = {:>5.1} dB",
            kappa_sqr_db(h),
            lambda_max_db(h)
        );
    }
    println!(
        "\nReflectors sit near the clients only (the paper's Fig. 2(b) geometry),\n\
         so the AP sees small angular spread and the channel matrix is often\n\
         ill-conditioned — the throughput zero-forcing leaves on the table."
    );
}
