//! Distributed MIMO: two office APs pool their antennas over the wired
//! backhaul (the paper's Figure 1 architecture) and jointly Geosphere-
//! decode four clients — versus each AP going it alone.
//!
//! ```sh
//! cargo run --release --example distributed_mimo
//! ```

use geosphere::channel::{lambda_max_db, ChannelModel, Testbed};
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::{measure, PhyConfig};
use geosphere::sim::{DistributedChannel, DistributedCluster};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let tb = Testbed::office();
    let clients = vec![4usize, 6, 7, 9];
    let snr = 18.0;
    let cfg = PhyConfig { payload_bits: 1024, ..PhyConfig::new(Constellation::Qam16) };

    println!("4 clients {clients:?}, 16-QAM rate-1/2, {snr} dB, Geosphere everywhere");
    println!(
        "{:<26} {:>8} {:>12} {:>10} {:>12}",
        "receiver", "antennas", "med Λ (dB)", "FER", "Mbps"
    );

    let configs: Vec<(&str, DistributedCluster)> = vec![
        ("AP0 alone", DistributedCluster::synchronized(vec![0], 4)),
        ("AP2 alone", DistributedCluster::synchronized(vec![2], 4)),
        ("AP0+AP2 joint (ideal)", DistributedCluster::synchronized(vec![0, 2], 4)),
        (
            "AP0+AP2 joint (0.2 rad jitter)",
            DistributedCluster::synchronized(vec![0, 2], 4).with_phase_jitter(0.2),
        ),
    ];

    for (label, cluster) in configs {
        let model = DistributedChannel::new(tb.clone(), cluster.clone(), clients.clone());
        let mut rng = StdRng::seed_from_u64(33);
        // Conditioning snapshot.
        let lam: f64 =
            (0..8).map(|_| lambda_max_db(model.realize(&mut rng).subcarrier(24))).sum::<f64>()
                / 8.0;
        let mut rng = StdRng::seed_from_u64(34);
        let m = measure(&cfg, &model, &geosphere_decoder(), snr, 8, &mut rng);
        println!(
            "{:<26} {:>8} {:>12.1} {:>10.2} {:>12.1}",
            label,
            cluster.total_antennas(),
            lam,
            m.fer,
            m.throughput_mbps
        );
    }

    println!(
        "\nPooling APs doubles the receive aperture *and* adds angular diversity\n\
         (the Fig. 2(b) degeneracy needs every path to share one bearing —\n\
         impossible with APs on opposite sides of the office). Phase jitter on\n\
         the backhaul is absorbed into the joint CSI and costs nothing."
    );
}
