//! Streaming base-station runtime: Poisson multi-client uplink traffic
//! flowing through the `gs-runtime` pipeline (plan → sharded detect →
//! recover), with backpressure, deadlines, and live runtime stats.
//!
//! ```sh
//! cargo run --release --example streaming_uplink
//! ```
//!
//! Knobs: `GS_DOMAINS=<n>` forces n synthetic memory domains (shards),
//! `GS_NO_PIN` disables worker pinning, `GS_SIMD` selects the kernel tier.

use geosphere::channel::RayleighChannel;
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::PhyConfig;
use geosphere::runtime::{FrameStream, StreamConfig};
use geosphere::sim::{run_poisson_uplink, PoissonParams};
use std::time::Duration;

fn main() {
    let cfg = PhyConfig { payload_bits: 1024, ..PhyConfig::new(Constellation::Qam16) };
    let clients = 4;

    let mut sc = StreamConfig::new(clients);
    sc.workers = 4;
    let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
    println!(
        "runtime: {} detection workers over {} shard(s), {} slots",
        stream.workers(),
        stream.shards(),
        stream.capacity()
    );

    // Each frame is a 2-stream MU-MIMO uplink into a four-antenna AP
    // (RayleighChannel::new(rx, tx)); the four *source lanes* above are
    // ordering domains, each offering its own Poisson arrival process.
    // Frames carry a 50 ms deadline.
    let model = RayleighChannel::new(4, 2);

    for rate_hz in [50.0, f64::INFINITY] {
        let params = PoissonParams {
            clients,
            frames_per_client: 25,
            rate_hz,
            snr_db: 26.0,
            deadline: Some(Duration::from_millis(50)),
            seed: 2014,
        };
        let label = if rate_hz.is_finite() {
            format!("paced {rate_hz} fps/client")
        } else {
            "saturation".into()
        };
        let report = run_poisson_uplink(&stream, &model, &params);
        println!(
            "\n--- {label} ---\n\
             offered {:>4}   admitted {:>4}   dropped {:>3}\n\
             delivered ok {:>4}   deadline misses {:>3}\n\
             elapsed {:>8.1?}   sustained {:>8.1} frames/sec",
            report.offered,
            report.submitted,
            report.dropped,
            report.frames_all_ok,
            report.deadline_misses,
            report.elapsed,
            report.frames_per_sec,
        );
    }

    let stats = stream.stats();
    println!(
        "\nruntime totals: {} submitted, {} completed, {} deadline misses, \
         occupancy {:.0}%, shard queue depths {:?}",
        stats.submitted,
        stats.completed,
        stats.deadline_misses,
        100.0 * stats.occupancy(),
        stats.shard_queue_depths,
    );
}
