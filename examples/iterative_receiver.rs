//! The §7 endgame: an iterative (turbo) MMSE-PIC receiver — soft parallel
//! interference cancellation, per-stream MMSE, max-log BCJR, and decoder
//! extrinsics fed back as symbol priors.
//!
//! ```sh
//! cargo run --release --example iterative_receiver
//! ```

use geosphere::channel::{ChannelModel, RayleighChannel};
use geosphere::modulation::Constellation;
use geosphere::phy::{uplink_frame_iterative, PhyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
    let model = RayleighChannel::new(4, 4);
    let trials = 20;

    println!("4x4 uplink, 16-QAM rate-1/2, Rayleigh, {trials} frames per point");
    println!("{:>8} | {:>12} {:>12} {:>12}", "SNR dB", "1 iter FER", "2 iter FER", "3 iter FER");
    for snr in [11.0, 13.0, 15.0] {
        let mut fails = [0usize; 3];
        for (slot, iters) in [1usize, 2, 3].into_iter().enumerate() {
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(9000 + t);
                let ch = model.realize(&mut rng);
                let out = uplink_frame_iterative(&cfg, &ch, snr, iters, &mut rng);
                fails[slot] += out.client_ok.iter().filter(|&&ok| !ok).count();
            }
        }
        let denom = (trials * 4) as f64;
        println!(
            "{:>8.0} | {:>12.3} {:>12.3} {:>12.3}",
            snr,
            fails[0] as f64 / denom,
            fails[1] as f64 / denom,
            fails[2] as f64 / denom,
        );
    }
    println!(
        "\nIteration 1 is plain soft-MMSE + BCJR; every further pass cancels\n\
         interference using the decoder's extrinsic beliefs. The architecture\n\
         is the one §7 of the paper identifies as the path to MIMO capacity —\n\
         and the natural next host for Geosphere's enumeration inside a\n\
         soft-input sphere detector."
    );
}
