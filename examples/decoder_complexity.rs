//! Decoder-complexity sweep: average PED calculations per detection as the
//! constellation densifies, for every sphere-decoder variant in the
//! workspace plus the breadth-first relatives.
//!
//! ```sh
//! cargo run --release --example decoder_complexity
//! ```

use geosphere::channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
use geosphere::core::{
    ethsd_decoder, geosphere_decoder, geosphere_zigzag_only_decoder, FsdDetector, KBestDetector,
    MimoDetector,
};
use geosphere::modulation::{Constellation, GridPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let snr_db = 24.0;
    let trials = 300;
    println!("Avg PED calcs per 4x4 detection at {snr_db} dB (Rayleigh, {trials} trials):");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "const.", "ETH-SD", "Geo zigzag", "Geo full", "K-best 8", "FSD"
    );

    for c in Constellation::ALL {
        let sigma2 = noise_variance_for_snr_db(snr_db);
        let pts = c.points();
        let mut rng = StdRng::seed_from_u64(11);
        let detectors: Vec<Box<dyn MimoDetector>> = vec![
            Box::new(ethsd_decoder()),
            Box::new(geosphere_zigzag_only_decoder()),
            Box::new(geosphere_decoder()),
            Box::new(KBestDetector::new(8)),
            Box::new(FsdDetector::new()),
        ];
        let mut totals = vec![0u64; detectors.len()];
        for _ in 0..trials {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let mut y = geosphere::core::apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            for (t, det) in totals.iter_mut().zip(&detectors) {
                *t += det.detect(&h, &y, c).stats.ped_calcs;
            }
        }
        print!("{:<12}", format!("{c:?}"));
        for t in &totals {
            print!(" {:>10.1}", *t as f64 / trials as f64);
        }
        println!();
    }

    println!(
        "\nETH-SD's cost grows with constellation density (√|O| distance\n\
         computations per node visit); Geosphere's stays nearly flat — the\n\
         property that makes 4x4 256-QAM sphere decoding practical."
    );
}
