//! Operations cockpit demo: the streaming runtime under Poisson uplink
//! traffic with a live Prometheus `/metrics` endpoint scraping it.
//!
//! ```sh
//! cargo run --release --example metrics_endpoint          # bounded demo
//! cargo run --release --example metrics_endpoint -- --serve  # keep serving
//! ```
//!
//! The bounded run (what CI's metrics smoke job executes) drives two
//! traffic bursts, self-scrapes the endpoint between them, lints the
//! exposition, checks counters are monotone across the scrapes, and
//! prints the headline series. A third, deadline-hopeless burst then fires
//! the flight recorder's anomaly triggers, and the demo fetches the live
//! dashboard (`/`) and dump summary (`/trace`); set `GS_TRACE_OUT=path`
//! to save a trace JSON sample (the Chrome/Perfetto export when built
//! with `--features trace`). With `--serve` it leaves the endpoint up
//! on `GS_METRICS_ADDR` (default `127.0.0.1:9184`) for a real Prometheus
//! to scrape — and a browser to watch: `http://127.0.0.1:9184/`.

use geosphere::channel::RayleighChannel;
use geosphere::core::geosphere_decoder;
use geosphere::modulation::Constellation;
use geosphere::phy::PhyConfig;
use geosphere::runtime::{FrameStream, StreamConfig};
use geosphere::sim::{run_poisson_uplink, PoissonParams};
use geosphere::telemetry::{assert_counters_monotone, lint_exposition, scrape, MetricsServer};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let serve_forever = std::env::args().any(|a| a == "--serve");
    let addr = std::env::var("GS_METRICS_ADDR").unwrap_or_else(|_| {
        // Bounded demo binds port 0 so parallel CI jobs never collide.
        if serve_forever {
            "127.0.0.1:9184".into()
        } else {
            "127.0.0.1:0".into()
        }
    });

    let cfg = PhyConfig { payload_bits: 1024, ..PhyConfig::new(Constellation::Qam16) };
    let clients = 4;
    let stream = Arc::new(FrameStream::new(cfg, geosphere_decoder(), StreamConfig::new(clients)));
    let server = MetricsServer::spawn(&addr, Arc::clone(&stream)).expect("bind metrics endpoint");
    println!("serving http://{}/metrics", server.addr());

    let model = RayleighChannel::new(4, 2);
    let params = PoissonParams {
        clients,
        frames_per_client: 25,
        rate_hz: f64::INFINITY,
        snr_db: 26.0,
        deadline: Some(Duration::from_millis(50)),
        seed: 2014,
    };

    run_poisson_uplink(&stream, &model, &params);
    let first = scrape(server.addr(), "/metrics").expect("scrape #1");
    let first = lint_exposition(&first).expect("exposition lints clean");

    run_poisson_uplink(&stream, &model, &params);
    let second = scrape(server.addr(), "/metrics").expect("scrape #2");
    let second = lint_exposition(&second).expect("exposition lints clean");

    let monotone =
        assert_counters_monotone(&first, &second).expect("counters monotone across scrapes");
    println!("lint ok: {} samples, {} counter series monotone", second.samples.len(), monotone);

    for name in [
        "gs_frames_completed_total",
        "gs_deadline_misses_total",
        "gs_windowed_frames_per_sec",
        "gs_windowed_miss_rate",
        "gs_uptime_seconds",
    ] {
        println!("  {name} = {}", second.value(name, &[]).expect("headline series present"));
    }
    for (q, label) in [("0.5", "p50"), ("0.99", "p99")] {
        if let Some(v) =
            second.value("gs_submit_delivery_latency_seconds", &[("client", "0"), ("quantile", q)])
        {
            println!("  latency client=0 {label} = {v:.6}s");
        }
    }

    let stats = stream.stats();
    assert_eq!(
        second.value("gs_frames_submitted_total", &[]),
        Some(stats.submitted as f64),
        "scrape disagrees with RuntimeStats (stream idle, so counts are stable)"
    );
    println!("metrics endpoint agrees with RuntimeStats ({} frames)", stats.submitted);

    // Flight recorder: a hopeless-deadline burst guarantees deadline-miss
    // anomalies, so (when built with `--features trace`) a dump is retained
    // and the dashboard's anomaly panel has something to show.
    use geosphere::prof::trace as gtrace;
    gtrace::set_min_dump_gap_ms(0);
    let miss_params =
        PoissonParams { deadline: Some(Duration::from_nanos(1)), seed: 2015, ..params.clone() };
    let report = run_poisson_uplink(&stream, &model, &miss_params);
    println!("anomaly burst: {} deadline misses triggered", report.deadline_misses);

    let dash = scrape(server.addr(), "/").expect("scrape /");
    assert!(dash.contains("ops cockpit"), "dashboard page served at /");
    let trace_json = scrape(server.addr(), "/trace").expect("scrape /trace");
    println!(
        "dashboard: {} bytes at /, dump summary: {} bytes at /trace",
        dash.len(),
        trace_json.len()
    );
    println!(
        "flight recorder compiled in: {}, retained dumps: {}",
        gtrace::recording_enabled(),
        gtrace::dump_count()
    );
    // CI's metrics smoke job sets GS_TRACE_OUT and uploads the file: the
    // Chrome export of the freshest dump when the recorder is live, else
    // the (dump-free) summary so the artifact is always well-formed JSON.
    if let Ok(out) = std::env::var("GS_TRACE_OUT") {
        let payload = if gtrace::dump_count() > 0 {
            scrape(server.addr(), "/trace/latest").expect("scrape /trace/latest")
        } else {
            trace_json
        };
        std::fs::write(&out, &payload).expect("write GS_TRACE_OUT");
        println!("wrote {} bytes of trace JSON to {out}", payload.len());
    }

    if serve_forever {
        println!("--serve: endpoint stays up; ctrl-c to exit");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
